package mpi

import (
	"testing"

	"fattree/internal/cps"
)

func TestSelectAlgorithmBySize(t *testing.T) {
	// MVAPICH alltoall: bruck (dissemination) for small messages,
	// pairwise exchange (shift) for large.
	small, err := SelectAlgorithm(MVAPICH, "alltoall", 324, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if small.Use.CPS != CPSDissemination {
		t.Errorf("small alltoall -> %s, want dissemination", small.Use.CPS)
	}
	large, err := SelectAlgorithm(MVAPICH, "alltoall", 324, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if large.Use.CPS != CPSShift {
		t.Errorf("large alltoall -> %s, want shift", large.Use.CPS)
	}
	if large.Sequence.Size() != 324 {
		t.Errorf("sequence size = %d, want 324", large.Sequence.Size())
	}
}

func TestSelectAlgorithmPow2Fallback(t *testing.T) {
	// MVAPICH small allgather: recursive doubling is pow2-only; on a
	// non-pow2 communicator the bruck row must win.
	pow2, err := SelectAlgorithm(MVAPICH, "allgather", 256, 512)
	if err != nil {
		t.Fatal(err)
	}
	if pow2.Use.CPS != CPSRecursiveDoubling {
		t.Errorf("pow2 small allgather -> %s, want recursive-doubling", pow2.Use.CPS)
	}
	odd, err := SelectAlgorithm(MVAPICH, "allgather", 324, 512)
	if err != nil {
		t.Fatal(err)
	}
	if odd.Use.CPS != CPSDissemination {
		t.Errorf("non-pow2 small allgather -> %s, want dissemination (bruck)", odd.Use.CPS)
	}
}

func TestSelectAlgorithmValidSequences(t *testing.T) {
	// Every selectable combination must produce a valid sequence.
	for _, lib := range []Library{MVAPICH, OpenMPI} {
		for _, coll := range Collectives(lib) {
			for _, n := range []int{16, 324} {
				for _, bytes := range []int64{256, 1 << 20} {
					sel, err := SelectAlgorithm(lib, coll, n, bytes)
					if err != nil {
						t.Errorf("%s/%s n=%d b=%d: %v", lib, coll, n, bytes, err)
						continue
					}
					if err := cps.Validate(sel.Sequence); err != nil {
						t.Errorf("%s/%s n=%d b=%d (%s): %v", lib, coll, n, bytes, sel.Use.Algorithm, err)
					}
				}
			}
		}
	}
}

func TestSelectAlgorithmErrors(t *testing.T) {
	if _, err := SelectAlgorithm(MVAPICH, "no-such", 16, 100); err == nil {
		t.Error("unknown collective accepted")
	}
	if _, err := SelectAlgorithm(MVAPICH, "alltoall", 0, 100); err == nil {
		t.Error("zero communicator accepted")
	}
}

func TestCollectivesListing(t *testing.T) {
	mv := Collectives(MVAPICH)
	if len(mv) < 6 {
		t.Errorf("MVAPICH covers %d collectives, want >= 6", len(mv))
	}
	for i := 1; i < len(mv); i++ {
		if mv[i] <= mv[i-1] {
			t.Fatalf("collectives not sorted: %v", mv)
		}
	}
	om := Collectives(OpenMPI)
	if len(om) < 5 {
		t.Errorf("OpenMPI covers %d collectives, want >= 5", len(om))
	}
}
