package mpi

import (
	"fmt"
	"sort"

	"fattree/internal/cps"
)

// This file encodes the paper's Table 1: the survey of MVAPICH and
// OpenMPI collective algorithms and the collective permutation sequence
// each one plays. The headline of Section III is that 18 algorithms
// across the two MPI libraries use only 8 distinct CPS, and those reduce
// to two families (unidirectional shifts and bidirectional XOR
// exchanges).

// Library identifies an MPI implementation in the survey.
type Library string

// The surveyed implementations.
const (
	MVAPICH Library = "mvapich"
	OpenMPI Library = "openmpi"
)

// SizeClass splits algorithm selection by message size, as both
// libraries do.
type SizeClass string

// Message size classes.
const (
	SmallMessages SizeClass = "small"
	LargeMessages SizeClass = "large"
)

// CPSKind names the eight sequences of Table 2.
type CPSKind string

// The eight collective permutation sequences.
const (
	CPSShift             CPSKind = "shift"
	CPSRing              CPSKind = "ring"
	CPSBinomial          CPSKind = "binomial"
	CPSDissemination     CPSKind = "dissemination"
	CPSTournament        CPSKind = "tournament"
	CPSRecursiveDoubling CPSKind = "recursive-doubling"
	CPSRecursiveHalving  CPSKind = "recursive-halving"
	CPSTopoAware         CPSKind = "topo-aware-recursive-doubling"
)

// Unidirectional reports the Table 2 classification of the CPS kind.
func (k CPSKind) Unidirectional() bool {
	switch k {
	case CPSRecursiveDoubling, CPSRecursiveHalving, CPSTopoAware:
		return false
	}
	return true
}

// AlgorithmUse is one cell of Table 1: an MPI collective algorithm and
// the CPS it exercises.
type AlgorithmUse struct {
	Collective string
	Algorithm  string
	CPS        CPSKind
	Library    Library
	Sizes      SizeClass
	// Pow2Only marks algorithms the library only selects for
	// power-of-two communicator sizes (the table's '2' annotation).
	Pow2Only bool
}

// Catalog reconstructs Table 1's survey of the two libraries' tuned
// collective layers.
var Catalog = []AlgorithmUse{
	{"allgather", "ring", CPSRing, MVAPICH, LargeMessages, false},
	{"allgather", "ring", CPSRing, OpenMPI, LargeMessages, false},
	{"allgather", "recursive-doubling", CPSRecursiveDoubling, MVAPICH, SmallMessages, true},
	{"allgather", "recursive-doubling", CPSRecursiveDoubling, OpenMPI, SmallMessages, true},
	{"allgather", "bruck", CPSDissemination, MVAPICH, SmallMessages, false},
	{"allgather", "bruck", CPSDissemination, OpenMPI, SmallMessages, false},
	{"allgatherv", "ring", CPSRing, OpenMPI, LargeMessages, false},
	{"allreduce", "recursive-doubling", CPSRecursiveDoubling, MVAPICH, SmallMessages, false},
	{"allreduce", "recursive-doubling", CPSRecursiveDoubling, OpenMPI, SmallMessages, false},
	{"allreduce", "reduce-scatter-allgather", CPSRecursiveHalving, MVAPICH, LargeMessages, true},
	{"allreduce", "ring", CPSRing, OpenMPI, LargeMessages, false},
	{"alltoall", "pairwise-exchange", CPSShift, MVAPICH, LargeMessages, false},
	{"alltoall", "pairwise-exchange", CPSShift, OpenMPI, LargeMessages, false},
	{"alltoall", "bruck", CPSDissemination, MVAPICH, SmallMessages, false},
	{"barrier", "dissemination", CPSDissemination, MVAPICH, SmallMessages, false},
	{"barrier", "recursive-doubling", CPSRecursiveDoubling, OpenMPI, SmallMessages, false},
	{"barrier", "tournament", CPSTournament, OpenMPI, SmallMessages, false},
	{"broadcast", "binomial", CPSBinomial, MVAPICH, SmallMessages, false},
	{"broadcast", "binomial", CPSBinomial, OpenMPI, SmallMessages, false},
	{"broadcast", "scatter-ring-allgather", CPSRing, MVAPICH, LargeMessages, false},
	{"gather", "binomial", CPSBinomial, OpenMPI, SmallMessages, false},
	{"reduce", "binomial", CPSBinomial, MVAPICH, SmallMessages, false},
	{"reduce", "binomial", CPSBinomial, OpenMPI, SmallMessages, false},
	{"reduce", "reduce-scatter-gather", CPSRecursiveHalving, MVAPICH, LargeMessages, true},
	{"reduce-scatter", "recursive-halving", CPSRecursiveHalving, MVAPICH, SmallMessages, true},
	{"reduce-scatter", "recursive-halving", CPSRecursiveHalving, OpenMPI, SmallMessages, true},
	{"reduce-scatter", "pairwise-exchange", CPSShift, MVAPICH, LargeMessages, false},
	{"reduce-scatter", "ring", CPSRing, OpenMPI, LargeMessages, false},
	{"scatter", "binomial", CPSBinomial, MVAPICH, SmallMessages, false},
}

// CPSKinds returns the distinct sequences the catalogue uses — the
// paper's point that the whole zoo reduces to 8.
func CPSKinds() []CPSKind {
	seen := make(map[CPSKind]bool)
	for _, u := range Catalog {
		seen[u.CPS] = true
	}
	out := make([]CPSKind, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UsesOf returns the catalogue rows for a collective.
func UsesOf(collective string) []AlgorithmUse {
	var out []AlgorithmUse
	for _, u := range Catalog {
		if u.Collective == collective {
			out = append(out, u)
		}
	}
	return out
}

// NewSequence instantiates a CPS kind for a job size. The topo-aware
// kind needs a tree shape; use NewTopoAwareSequence for it.
func NewSequence(kind CPSKind, n int) (cps.Sequence, error) {
	switch kind {
	case CPSShift:
		return cps.Shift(n), nil
	case CPSRing:
		return cps.RingAllgather(n), nil
	case CPSBinomial:
		return cps.Binomial(n), nil
	case CPSDissemination:
		return cps.Dissemination(n), nil
	case CPSTournament:
		return cps.Tournament(n), nil
	case CPSRecursiveDoubling:
		return cps.RecursiveDoubling(n), nil
	case CPSRecursiveHalving:
		return cps.RecursiveHalving(n), nil
	case CPSTopoAware:
		return nil, fmt.Errorf("mpi: %s needs a tree shape; use NewTopoAwareSequence", kind)
	default:
		return nil, fmt.Errorf("mpi: unknown CPS kind %q", kind)
	}
}

// NewTopoAwareSequence instantiates the Section VI sequence for the
// active hosts of a tree shape (active == nil means fully populated).
func NewTopoAwareSequence(shape []int, active []int) (cps.Sequence, error) {
	if active == nil {
		return cps.TopoAwareRecursiveDoubling(shape)
	}
	return cps.TopoAwareRecursiveDoublingPartial(shape, active)
}
