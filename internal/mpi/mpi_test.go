package mpi

import (
	"testing"

	"fattree/internal/cps"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func testJob(t *testing.T) *Job {
	t.Helper()
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	j, err := NewContentionFreeJob(tp, nil)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestNewJobValidation(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	if _, err := NewJob(lft, order.Topology(64, nil)); err == nil {
		t.Error("host-count mismatch accepted")
	}
	if _, err := NewJob(lft, order.Topology(128, nil)); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
}

func TestContentionFreeJobPartial(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	active := []int{0, 1, 2, 3, 64, 65, 66, 67}
	j, err := NewContentionFreeJob(tp, active)
	if err != nil {
		t.Fatal(err)
	}
	if j.Size() != 8 {
		t.Fatalf("size = %d, want 8", j.Size())
	}
	rep, err := j.Analyze(cps.Shift(8))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ContentionFree() {
		t.Errorf("partial shift HSD = %d, want 1", rep.MaxHSD())
	}
}

func TestStageMessagesTranslation(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	o := order.Random(128, nil, 9)
	j, err := NewJob(lft, o)
	if err != nil {
		t.Fatal(err)
	}
	seq := cps.Ring(128)
	msgs := j.StageMessages(seq, 0, 4096)
	if len(msgs) != 128 {
		t.Fatalf("messages = %d, want 128", len(msgs))
	}
	for i, m := range msgs {
		if m.Bytes != 4096 {
			t.Fatalf("message %d bytes = %d", i, m.Bytes)
		}
		// Ring: rank r -> r+1 under the ordering.
		r := o.RankOf(m.Src)
		if o.HostOf[(r+1)%128] != m.Dst {
			t.Fatalf("message %d: %d->%d does not match ring under ordering", i, m.Src, m.Dst)
		}
	}
}

func TestSimulateContentionFreeFullBandwidth(t *testing.T) {
	j := testJob(t)
	cfg := netsim.DefaultConfig()
	st, err := j.Simulate(cps.Ring(16), 1<<20, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nb := j.NormalizedBandwidth(st, cfg); nb < 0.9 {
		t.Errorf("normalized bandwidth = %.3f, want near 1 for contention-free ring", nb)
	}
}

func TestSimulateSyncMode(t *testing.T) {
	j := testJob(t)
	cfg := netsim.DefaultConfig()
	seq := cps.Dissemination(16)
	st, err := j.Simulate(seq, 8192, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.StageDurations) != seq.NumStages() {
		t.Errorf("stage durations = %d, want %d", len(st.StageDurations), seq.NumStages())
	}
}

func TestSampleStages(t *testing.T) {
	seq := cps.Shift(64)
	s, err := SampleStages(seq, []int{0, 10, 62})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStages() != 3 {
		t.Fatalf("stages = %d, want 3", s.NumStages())
	}
	if s.Size() != 64 || s.Bidirectional() {
		t.Error("wrapper metadata wrong")
	}
	// Stage 1 of the sample is stage 10 of the shift: displacement 11.
	d, ok := cps.Displacement(s.Stage(1), 64)
	if !ok || d != 11 {
		t.Errorf("sampled stage displacement = (%d,%v), want (11,true)", d, ok)
	}
	if _, err := SampleStages(seq, []int{63}); err == nil {
		t.Error("out-of-range stage accepted")
	}
}

func TestCatalogEncodesTable1(t *testing.T) {
	kinds := CPSKinds()
	// Table 1 uses 7 of the 8 Table 2 CPS directly (the topo-aware one
	// is this paper's contribution, not in the survey).
	if len(kinds) != 7 {
		t.Fatalf("distinct CPS kinds = %d (%v), want 7", len(kinds), kinds)
	}
	// At least 18 algorithm entries across the two libraries.
	if len(Catalog) < 18 {
		t.Errorf("catalogue has %d rows, want >= 18", len(Catalog))
	}
	libs := map[Library]bool{}
	for _, u := range Catalog {
		libs[u.Library] = true
	}
	if !libs[MVAPICH] || !libs[OpenMPI] {
		t.Error("catalogue must cover both MVAPICH and OpenMPI")
	}
}

func TestCatalogInstantiable(t *testing.T) {
	// Every catalogue row must instantiate and validate for pow2 and
	// (where allowed) non-pow2 sizes.
	for _, u := range Catalog {
		sizes := []int{16}
		if !u.Pow2Only {
			sizes = append(sizes, 18)
		}
		for _, n := range sizes {
			seq, err := NewSequence(u.CPS, n)
			if err != nil {
				t.Fatalf("%s/%s: %v", u.Collective, u.Algorithm, err)
			}
			if err := cps.Validate(seq); err != nil {
				t.Errorf("%s/%s n=%d: %v", u.Collective, u.Algorithm, n, err)
			}
		}
	}
}

func TestUsesOf(t *testing.T) {
	uses := UsesOf("allreduce")
	if len(uses) < 3 {
		t.Errorf("allreduce rows = %d, want >= 3", len(uses))
	}
	for _, u := range uses {
		if u.Collective != "allreduce" {
			t.Errorf("stray row %+v", u)
		}
	}
	if got := UsesOf("no-such-collective"); got != nil {
		t.Errorf("unknown collective returned %v", got)
	}
}

func TestUnidirectionalClassification(t *testing.T) {
	uni := []CPSKind{CPSShift, CPSRing, CPSBinomial, CPSDissemination, CPSTournament}
	bi := []CPSKind{CPSRecursiveDoubling, CPSRecursiveHalving, CPSTopoAware}
	for _, k := range uni {
		if !k.Unidirectional() {
			t.Errorf("%s misclassified as bidirectional", k)
		}
	}
	for _, k := range bi {
		if k.Unidirectional() {
			t.Errorf("%s misclassified as unidirectional", k)
		}
	}
}

func TestNewSequenceErrors(t *testing.T) {
	if _, err := NewSequence(CPSTopoAware, 16); err == nil {
		t.Error("topo-aware without shape accepted")
	}
	if _, err := NewSequence("bogus", 16); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestNewTopoAwareSequence(t *testing.T) {
	seq, err := NewTopoAwareSequence([]int{4, 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Size() != 16 {
		t.Errorf("size = %d, want 16", seq.Size())
	}
	part, err := NewTopoAwareSequence([]int{4, 4}, []int{0, 1, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if part.Size() != 4 {
		t.Errorf("partial size = %d, want 4", part.Size())
	}
}
