package mpi_test

import (
	"fmt"

	"fattree/internal/cps"
	"fattree/internal/mpi"
	"fattree/internal/topo"
)

// Set up the paper's contention-free configuration and check an
// all-to-all analytically.
func ExampleNewContentionFreeJob() {
	cluster := topo.MustBuild(topo.Cluster324)
	job, err := mpi.NewContentionFreeJob(cluster, nil)
	if err != nil {
		panic(err)
	}
	rep, err := job.Analyze(cps.Shift(job.Size()))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s over %s: max HSD %d, contention-free %v\n",
		rep.Sequence, rep.Routing, rep.MaxHSD(), rep.ContentionFree())
	// Output:
	// shift over d-mod-k: max HSD 1, contention-free true
}

// Ask what algorithm a library would run, like its tuned-collectives
// layer does.
func ExampleSelectAlgorithm() {
	small, _ := mpi.SelectAlgorithm(mpi.MVAPICH, "allreduce", 324, 1024)
	large, _ := mpi.SelectAlgorithm(mpi.OpenMPI, "allreduce", 324, 1<<20)
	fmt.Printf("mvapich small allreduce: %s (%s)\n", small.Use.Algorithm, small.Use.CPS)
	fmt.Printf("openmpi large allreduce: %s (%s)\n", large.Use.Algorithm, large.Use.CPS)
	// Output:
	// mvapich small allreduce: recursive-doubling (recursive-doubling)
	// openmpi large allreduce: ring (ring)
}
