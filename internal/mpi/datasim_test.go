package mpi

import (
	"math"
	"math/rand"
	"testing"

	"fattree/internal/cps"
)

func randomContrib(n, width int, seed int64) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, width)
		for j := range out[i] {
			out[i][j] = float64(r.Intn(1000)) / 8 // exact in float64
		}
	}
	return out
}

func expectedSum(contrib [][]float64) []float64 {
	sum := make([]float64, len(contrib[0]))
	for _, v := range contrib {
		for j, x := range v {
			sum[j] += x
		}
	}
	return sum
}

func checkAllReduce(t *testing.T, seq cps.Sequence, n int) {
	t.Helper()
	contrib := randomContrib(n, 4, int64(n))
	got, err := AllReduceSum(seq, contrib)
	if err != nil {
		t.Fatalf("%s n=%d: %v", seq.Name(), n, err)
	}
	want := expectedSum(contrib)
	for r := 0; r < n; r++ {
		for j := range want {
			if math.Abs(got[r][j]-want[j]) > 1e-9 {
				t.Fatalf("%s n=%d: rank %d element %d = %v, want %v", seq.Name(), n, r, j, got[r][j], want[j])
			}
		}
	}
}

func TestAllReduceSumRecursiveDoubling(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		checkAllReduce(t, cps.RecursiveDoubling(n), n)
	}
}

func TestAllReduceSumRecursiveDoublingNonPow2(t *testing.T) {
	// The pre/post proxy stages must keep the sum exact.
	for _, n := range []int{3, 5, 6, 7, 12, 18, 24, 100} {
		checkAllReduce(t, cps.RecursiveDoubling(n), n)
	}
}

func TestAllReduceSumTopoAware(t *testing.T) {
	// The Section VI schedule computes the same sums — including its
	// pre/post stages on non-power-of-two levels.
	for _, shape := range [][]int{{4, 4}, {6, 6}, {18, 18}, {4, 4, 4}, {6, 6, 4}} {
		seq, err := cps.TopoAwareRecursiveDoubling(shape)
		if err != nil {
			t.Fatal(err)
		}
		checkAllReduce(t, seq, seq.Size())
	}
}

func TestAllReduceSumTopoAwarePartial(t *testing.T) {
	// Fixup stages must not double-count.
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		perm := r.Perm(64)
		active := perm[r.Intn(20):]
		seq, err := cps.TopoAwareRecursiveDoublingPartial([]int{4, 4, 4}, active)
		if err != nil {
			t.Fatal(err)
		}
		checkAllReduce(t, seq, seq.Size())
	}
}

func TestAllReduceSumInputValidation(t *testing.T) {
	seq := cps.RecursiveDoubling(4)
	if _, err := AllReduceSum(seq, randomContrib(3, 4, 1)); err == nil {
		t.Error("rank-count mismatch accepted")
	}
	bad := randomContrib(4, 4, 1)
	bad[2] = bad[2][:2]
	if _, err := AllReduceSum(seq, bad); err == nil {
		t.Error("ragged vectors accepted")
	}
}

func TestAllReduceSumDetectsIncompleteSchedule(t *testing.T) {
	// A schedule that stops early leaves ranks without contributions.
	full := cps.RecursiveDoubling(8)
	truncated, err := SampleStages(full, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AllReduceSum(truncated, randomContrib(8, 2, 2)); err == nil {
		t.Error("incomplete schedule accepted")
	}
}

func TestBroadcastDataBinomial(t *testing.T) {
	for _, n := range []int{2, 5, 16, 31, 64} {
		seq := cps.Binomial(n)
		vec := []float64{3.5, -1, 42}
		out, err := BroadcastData(seq, 0, vec)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for r := 0; r < n; r++ {
			for j := range vec {
				if out[r][j] != vec[j] {
					t.Fatalf("n=%d rank %d got %v", n, r, out[r])
				}
			}
		}
	}
}

func TestBroadcastDataErrors(t *testing.T) {
	if _, err := BroadcastData(cps.Binomial(8), 9, []float64{1}); err == nil {
		t.Error("bad root accepted")
	}
	// Binomial rooted elsewhere does not reach everyone from rank 3.
	if _, err := BroadcastData(cps.Binomial(8), 3, []float64{1}); err == nil {
		t.Error("wrong-root broadcast accepted")
	}
}
