package mpi

import (
	"fmt"

	"fattree/internal/cps"
)

// This file executes collective algorithms at the data level: each rank
// holds a vector, stages move and reduce real values following the
// permutation sequence, and the result is checked against the
// mathematical definition. The CPS abstraction proves the *pattern* is
// contention free; this layer proves the pattern actually computes the
// collective — the other half of the paper's decomposition (Section
// III: "the second part defines the content of the communication").

// AllReduceSum executes a sum-allreduce over the given bidirectional
// exchange schedule (flat or topology-aware recursive doubling): every
// exchange sends the sender's full accumulated vector, receivers add
// element-wise contributions they have not folded in yet. Returns the
// per-rank result vectors.
//
// To keep double counting impossible with arbitrary schedules, each rank
// tracks the set of contributions its accumulator contains; a transfer
// merges the sender's *set* and adds exactly the missing elements. This
// mirrors how segmented implementations tag data, and catches schedules
// that deliver a contribution twice without the tag.
func AllReduceSum(seq cps.Sequence, contrib [][]float64) ([][]float64, error) {
	n := seq.Size()
	if len(contrib) != n {
		return nil, fmt.Errorf("mpi: %d contributions for %d ranks", len(contrib), n)
	}
	width := len(contrib[0])
	for r, v := range contrib {
		if len(v) != width {
			return nil, fmt.Errorf("mpi: rank %d vector width %d != %d", r, len(v), width)
		}
	}
	// acc[r] = current accumulated vector; have[r][k] marks rank k's
	// contribution as folded in.
	acc := make([][]float64, n)
	have := make([][]bool, n)
	for r := 0; r < n; r++ {
		acc[r] = append([]float64(nil), contrib[r]...)
		have[r] = make([]bool, n)
		have[r][r] = true
	}
	for s := 0; s < seq.NumStages(); s++ {
		stage := seq.Stage(s)
		// Simultaneous semantics: snapshot senders before applying.
		type delta struct {
			dst int32
			set []bool
			acc []float64
		}
		snaps := make([]delta, 0, len(stage))
		for _, p := range stage {
			snaps = append(snaps, delta{
				dst: p.Dst,
				set: append([]bool(nil), have[p.Src]...),
				acc: append([]float64(nil), acc[p.Src]...),
			})
		}
		for _, d := range snaps {
			missing, shared, subset := false, false, true
			for k := 0; k < n; k++ {
				senderHas, recvHas := d.set[k], have[d.dst][k]
				if senderHas && !recvHas {
					missing = true
				}
				if senderHas && recvHas {
					shared = true
				}
				if recvHas && !senderHas {
					subset = false
				}
			}
			switch {
			case !missing:
				// Fully redundant transfer; nothing to add.
			case !shared:
				// Disjoint sets (the XOR and pre-stage case): add the
				// sender's accumulator element-wise.
				for i := 0; i < width; i++ {
					acc[d.dst][i] += d.acc[i]
				}
				for k := 0; k < n; k++ {
					have[d.dst][k] = have[d.dst][k] || d.set[k]
				}
			case subset:
				// Receiver's set is contained in the sender's (the
				// post-stage and fixup case): replace wholesale.
				copy(acc[d.dst], d.acc)
				copy(have[d.dst], d.set)
			default:
				// Partial overlap would double-count; real segmented
				// implementations never generate it, and neither do
				// our schedules.
				return nil, fmt.Errorf("mpi: stage %d: transfer to rank %d has partial overlap; schedule not sum-safe", s, d.dst)
			}
		}
	}
	for r := 0; r < n; r++ {
		for k := 0; k < n; k++ {
			if !have[r][k] {
				return nil, fmt.Errorf("mpi: rank %d missing contribution of rank %d", r, k)
			}
		}
	}
	return acc, nil
}

// BroadcastData executes a one-to-all schedule: rank root's vector must
// reach every rank unchanged.
func BroadcastData(seq cps.Sequence, root int, vec []float64) ([][]float64, error) {
	n := seq.Size()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("mpi: root %d out of range", root)
	}
	out := make([][]float64, n)
	out[root] = append([]float64(nil), vec...)
	for s := 0; s < seq.NumStages(); s++ {
		stage := seq.Stage(s)
		type mv struct {
			dst  int32
			vals []float64
		}
		var moves []mv
		for _, p := range stage {
			if out[p.Src] != nil && out[p.Dst] == nil {
				moves = append(moves, mv{p.Dst, append([]float64(nil), out[p.Src]...)})
			}
		}
		for _, m := range moves {
			out[m.dst] = m.vals
		}
	}
	for r := 0; r < n; r++ {
		if out[r] == nil {
			return nil, fmt.Errorf("mpi: rank %d never received the broadcast", r)
		}
	}
	return out, nil
}
