// Package mpi binds the pieces together the way an MPI library does: a
// job (topology + routing + node ordering) runs collectives whose
// communication is a collective permutation sequence (Section III). The
// package translates CPS stages into end-port traffic for the analytic
// HSD model and the packet simulator, and encodes the paper's Table 1
// catalogue of which MVAPICH/OpenMPI collective algorithms use which CPS.
package mpi

import (
	"fmt"
	"sync"

	"fattree/internal/cps"
	"fattree/internal/hsd"
	"fattree/internal/netsim"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// Job is a single MPI job on a cluster: the topology, the programmed
// routing and the rank-to-end-port assignment.
type Job struct {
	Topo  *topo.Topology
	Route route.Router
	Order *order.Ordering

	// Simulator cache: repeated SimulateMode calls with the same plain
	// config (no writers or observers attached) check the same Network
	// out and back in, so sweeps reuse its arenas instead of rebuilding
	// channel and path state per call. Guarded by mu; concurrent
	// simulations simply build a fresh instance.
	mu     sync.Mutex
	simNW  *netsim.Network
	simCfg netsim.Config
}

// NewJob validates the cross-references between the pieces.
func NewJob(rt route.Router, o *order.Ordering) (*Job, error) {
	if o.NumHosts() != rt.Topology().NumHosts() {
		return nil, fmt.Errorf("mpi: ordering built for %d hosts, topology has %d", o.NumHosts(), rt.Topology().NumHosts())
	}
	return &Job{Topo: rt.Topology(), Route: rt, Order: o}, nil
}

// NewContentionFreeJob builds the paper's recommended configuration for
// the active hosts of a topology: rank-compacted D-Mod-K routing plus
// topology-aware ordering. active == nil means the whole cluster.
func NewContentionFreeJob(t *topo.Topology, active []int) (*Job, error) {
	var lft *route.LFT
	if active == nil {
		lft = route.DModK(t)
	} else {
		var err error
		lft, err = route.DModKActive(t, active)
		if err != nil {
			return nil, err
		}
	}
	o := order.Topology(t.NumHosts(), active)
	return NewJob(lft, o)
}

// Size returns the job size (number of ranks).
func (j *Job) Size() int { return j.Order.Size() }

// StageMessages translates stage s of the sequence into simulator
// messages of the given payload size.
func (j *Job) StageMessages(seq cps.Sequence, s int, bytes int64) []netsim.Message {
	stage := seq.Stage(s)
	msgs := make([]netsim.Message, 0, len(stage))
	for _, p := range stage {
		msgs = append(msgs, netsim.Message{
			Src:   j.Order.HostOf[p.Src],
			Dst:   j.Order.HostOf[p.Dst],
			Bytes: bytes,
		})
	}
	return msgs
}

// AllMessages translates every stage.
func (j *Job) AllMessages(seq cps.Sequence, bytes int64) [][]netsim.Message {
	out := make([][]netsim.Message, seq.NumStages())
	for s := range out {
		out[s] = j.StageMessages(seq, s, bytes)
	}
	return out
}

// Analyze runs the analytic HSD model on the sequence.
func (j *Job) Analyze(seq cps.Sequence) (*hsd.Report, error) {
	return hsd.Analyze(j.Route, j.Order, seq)
}

// Mode selects the stage-progression semantics of a simulation.
type Mode int

const (
	// Async is the paper's Section II semantics: each end-port starts
	// its next message as soon as the previous one has been sent to
	// the wire, with no cross-host coordination.
	Async Mode = iota
	// Barrier separates stages with a global barrier (worst-case
	// synchronized semantics).
	Barrier
	// Dependent is real collective semantics: a rank enters stage s+1
	// only after its stage-s sends have left and its stage-s receives
	// have arrived.
	Dependent
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Async:
		return "async"
	case Barrier:
		return "barrier"
	case Dependent:
		return "dependent"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Simulate runs the sequence through the packet simulator. With sync set,
// a barrier separates stages; otherwise every end-port progresses
// asynchronously. See SimulateMode for the full semantics menu.
func (j *Job) Simulate(seq cps.Sequence, bytes int64, sync bool, cfg netsim.Config) (netsim.Stats, error) {
	mode := Async
	if sync {
		mode = Barrier
	}
	return j.SimulateMode(seq, bytes, mode, cfg)
}

// SimulateMode runs the sequence under the chosen progression semantics.
func (j *Job) SimulateMode(seq cps.Sequence, bytes int64, mode Mode, cfg netsim.Config) (netsim.Stats, error) {
	if cfg.Trace != nil && cfg.TraceLabel == "" {
		// Name the trace's collective-phase lane after the sequence so
		// a Perfetto view says which CPS the stage markers belong to.
		cfg.TraceLabel = seq.Name()
	}
	nw, cacheable, err := j.checkoutNetwork(cfg)
	if err != nil {
		return netsim.Stats{}, err
	}
	if cacheable {
		defer j.checkinNetwork(nw, cfg)
	}
	stages := j.AllMessages(seq, bytes)
	switch mode {
	case Barrier:
		return nw.RunStages(stages)
	case Dependent:
		return nw.RunDependent(stages)
	default:
		var flat []netsim.Message
		for _, st := range stages {
			flat = append(flat, st...)
		}
		return nw.Run(flat)
	}
}

// plainConfig reports whether cfg carries no writer or observer
// attachments — the precondition for Network reuse (and for comparing
// configs with ==, which would panic on exotic io.Writer types).
func plainConfig(cfg netsim.Config) bool {
	return cfg.FlowLog == nil && cfg.Metrics == nil && cfg.Probes == nil &&
		cfg.Trace == nil && cfg.LinkProbes == nil && cfg.Progress == nil
}

// checkoutNetwork returns a simulator for cfg, reusing the cached one
// when its config matches. cacheable reports whether the caller should
// hand it back via checkinNetwork.
func (j *Job) checkoutNetwork(cfg netsim.Config) (nw *netsim.Network, cacheable bool, err error) {
	if !plainConfig(cfg) {
		nw, err = netsim.New(j.Route, cfg)
		return nw, false, err
	}
	j.mu.Lock()
	if j.simNW != nil && j.simCfg == cfg {
		nw = j.simNW
		j.simNW = nil
	}
	j.mu.Unlock()
	if nw != nil {
		return nw, true, nil
	}
	nw, err = netsim.New(j.Route, cfg)
	return nw, err == nil, err
}

// checkinNetwork returns a checked-out simulator to the cache.
func (j *Job) checkinNetwork(nw *netsim.Network, cfg netsim.Config) {
	j.mu.Lock()
	j.simNW, j.simCfg = nw, cfg
	j.mu.Unlock()
}

// NormalizedBandwidth scales an aggregate bandwidth to the job's ideal
// injection capacity (size * per-host cap), the Y axis of Figure 2.
func (j *Job) NormalizedBandwidth(st netsim.Stats, cfg netsim.Config) float64 {
	ideal := cfg.HostBandwidth * float64(j.Size())
	if ideal == 0 {
		return 0
	}
	return st.EffectiveBandwidth() / ideal
}

// SampleStages wraps a sequence exposing only the selected stage indices
// — used to keep packet simulations of the 1943-stage Shift tractable
// while preserving per-stage behaviour.
func SampleStages(seq cps.Sequence, stages []int) (cps.Sequence, error) {
	for _, s := range stages {
		if s < 0 || s >= seq.NumStages() {
			return nil, fmt.Errorf("mpi: stage %d out of range [0,%d)", s, seq.NumStages())
		}
	}
	return &sampledSeq{inner: seq, idx: append([]int(nil), stages...)}, nil
}

type sampledSeq struct {
	inner cps.Sequence
	idx   []int
}

func (s *sampledSeq) Name() string          { return s.inner.Name() + "-sampled" }
func (s *sampledSeq) Size() int             { return s.inner.Size() }
func (s *sampledSeq) NumStages() int        { return len(s.idx) }
func (s *sampledSeq) Stage(i int) cps.Stage { return s.inner.Stage(s.idx[i]) }
func (s *sampledSeq) Bidirectional() bool   { return s.inner.Bidirectional() }
