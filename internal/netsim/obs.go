package netsim

// Observability bridge: when any of Config.Metrics / Probes / Trace is
// set, the simulator mirrors its hot-path bookkeeping into the obs
// layer — counters and histograms into the registry, time-series probes
// onto the sampler, and message/packet lifecycle events onto the Chrome
// trace-event tracer. With all three nil, nw.ob stays nil and the hot
// path pays a single pointer check per instrumentation site.
//
// Registry metrics are atomic, so sharded runs share one simObs across
// shard goroutines; the mutex-protected tracer and sampler are driven
// only from the coordinator or with sharding disabled.
//
// docs/OBSERVABILITY.md documents every metric name, probe series and
// trace lane emitted here.

import (
	"fmt"
	"strconv"

	"fattree/internal/des"
	"fattree/internal/obs"
)

// Trace lane groups (Chrome trace-event pids).
const (
	tracePidMetrics = 0 // counter tracks (event queue depth, link util)
	tracePidHosts   = 1 // one lane per end-port: inject/deliver/msg spans
	tracePidLinks   = 2 // one lane per directed channel: packet spans
	tracePidStages  = 3 // collective phase markers (barrier mode)
)

// DefaultLatencyBucketsUS is the fixed bucket layout of the
// netsim_message_latency_us histogram, in microseconds.
var DefaultLatencyBucketsUS = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
}

// simObs is the per-run observability state.
type simObs struct {
	reg    *obs.Registry
	trace  *obs.Tracer
	probes *obs.Sampler
	link   *obs.Sampler // fattree-linkprobe/v1 stream (Config.LinkProbes)

	// queueHW tracks each channel's input-buffer depth high-water mark,
	// updated at every buffer push. Each channel's buffer is touched
	// only by the shard owning its receiver side, so the per-channel
	// slots never race across shard goroutines.
	queueHW []int32

	pktInjected    *obs.Counter
	pktTx          *obs.Counter
	msgDelivered   *obs.Counter
	bytesDelivered *obs.Counter
	outOfOrder     *obs.Counter
	hostStalls     *obs.Counter
	switchStalls   *obs.Counter
	msgLatencyUS   *obs.Histogram
}

// newSimObs builds the observability state for a run, or returns nil
// when the Config enables nothing.
func (nw *Network) newSimObs() *simObs {
	cfg := &nw.cfg
	if cfg.Metrics == nil && cfg.Probes == nil && cfg.Trace == nil && cfg.LinkProbes == nil {
		return nil
	}
	reg := cfg.Metrics
	if reg == nil {
		// Probe series read the stall counters; keep them live in a
		// private registry when the caller only wants probes/traces.
		reg = obs.NewRegistry()
	}
	ob := &simObs{
		reg:            reg,
		trace:          cfg.Trace,
		probes:         cfg.Probes,
		link:           cfg.LinkProbes,
		queueHW:        make([]int32, len(nw.channels)),
		pktInjected:    reg.Counter("netsim_packets_injected_total"),
		pktTx:          reg.Counter("netsim_packets_tx_total"),
		msgDelivered:   reg.Counter("netsim_messages_delivered_total"),
		bytesDelivered: reg.Counter("netsim_bytes_delivered_total"),
		outOfOrder:     reg.Counter("netsim_out_of_order_packets_total"),
		hostStalls:     reg.Counter("netsim_host_credit_stalls_total"),
		switchStalls:   reg.Counter("netsim_switch_credit_stalls_total"),
		msgLatencyUS:   reg.MustHistogram("netsim_message_latency_us", DefaultLatencyBucketsUS),
	}
	nw.emitTraceMeta(ob)
	return ob
}

// emitTraceMeta labels the trace lanes once per Network lifetime.
func (nw *Network) emitTraceMeta(ob *simObs) {
	if ob.trace == nil || nw.traceMetaDone {
		return
	}
	nw.traceMetaDone = true
	tr := ob.trace
	tr.ProcessName(tracePidMetrics, "metrics")
	tr.ProcessName(tracePidHosts, "hosts")
	tr.ProcessName(tracePidLinks, "links")
	label := nw.cfg.TraceLabel
	if label == "" {
		label = "collective"
	}
	tr.ProcessName(tracePidStages, label)
	for i := range nw.channels {
		ch := &nw.channels[i]
		dir := "up"
		if ch.id%2 == 1 {
			dir = "down"
		}
		tr.ThreadName(tracePidLinks, int(ch.id),
			fmt.Sprintf("ch%d %s n%d>n%d", ch.id, dir, ch.from, ch.to))
	}
}

// startProbes registers the simulator's time series on the sampler and
// arms it on the current scheduler. Called once per Run (and per
// barrier stage, since each stage drains the event queue).
func (nw *Network) startProbes() {
	ob := nw.ob
	if ob == nil || ob.probes == nil {
		return
	}
	s := ob.probes
	s.Reset()
	// Baseline the utilization delta at the current instant so a
	// mid-run (re)start — a new barrier stage — doesn't attribute all
	// historical busy time to its first sample.
	prevBusy := make([]des.Time, len(nw.channels))
	for i := range nw.channels {
		prevBusy[i] = nw.channels[i].busy
	}
	prevT := nw.sched.Now()
	s.Series("link_util", func(now des.Time, buf []float64) []float64 {
		dt := now - prevT
		maxU := 0.0
		for i := range nw.channels {
			busy := nw.channels[i].busy
			u := 0.0
			if dt > 0 {
				u = float64(busy-prevBusy[i]) / float64(dt)
			}
			prevBusy[i] = busy
			if u > maxU {
				maxU = u
			}
			buf = append(buf, u)
		}
		prevT = now
		if ob.trace != nil {
			ob.trace.Counter(tracePidMetrics, now, "max_link_util",
				obs.Num("util", maxU))
		}
		return buf
	})
	s.Series("buffer_pkts", func(now des.Time, buf []float64) []float64 {
		total := 0
		for i := range nw.channels {
			n := nw.channels[i].buf.len()
			total += n
			buf = append(buf, float64(n))
		}
		if ob.trace != nil {
			ob.trace.Counter(tracePidMetrics, now, "buffered_pkts",
				obs.Num("pkts", float64(total)))
		}
		return buf
	})
	s.Series("credit_stalls", func(now des.Time, buf []float64) []float64 {
		return append(buf,
			float64(ob.hostStalls.Value()),
			float64(ob.switchStalls.Value()))
	})
	s.Series("event_queue", func(now des.Time, buf []float64) []float64 {
		pend := nw.schedPending()
		if ob.trace != nil {
			ob.trace.Counter(tracePidMetrics, now, "event_queue",
				obs.Num("pending", float64(pend)))
		}
		return append(buf, float64(pend))
	})
	s.Start(nw.sched)
}

// noteQueueDepth tracks ch's input-buffer high-water mark after a push.
func (ob *simObs) noteQueueDepth(ch *channel) {
	if d := int32(ch.buf.len()); d > ob.queueHW[ch.id] {
		ob.queueHW[ch.id] = d
	}
}

// startSamplers arms every sampled stream for the run (or barrier
// stage): the -metrics probes, the -link-probes series and the live
// progress tick. Each is independently nil-guarded.
func (nw *Network) startSamplers() {
	nw.startProbes()
	nw.startLinkProbes()
	nw.startProgress()
}

// startLinkProbes registers the fattree-linkprobe/v1 series — one
// value per directed channel — on the dedicated link sampler and arms
// it on the current scheduler.
func (nw *Network) startLinkProbes() {
	ob := nw.ob
	if ob == nil || ob.link == nil {
		return
	}
	s := ob.link
	s.Reset()
	prevBusy := make([]des.Time, len(nw.channels))
	for i := range nw.channels {
		prevBusy[i] = nw.channels[i].busy
	}
	prevT := nw.sched.Now()
	s.Series("link_util", func(now des.Time, buf []float64) []float64 {
		dt := now - prevT
		for i := range nw.channels {
			busy := nw.channels[i].busy
			u := 0.0
			if dt > 0 {
				u = float64(busy-prevBusy[i]) / float64(dt)
			}
			prevBusy[i] = busy
			buf = append(buf, u)
		}
		prevT = now
		return buf
	})
	s.Series("queue_depth", func(now des.Time, buf []float64) []float64 {
		for i := range nw.channels {
			buf = append(buf, float64(nw.channels[i].buf.len()))
		}
		return buf
	})
	s.Start(nw.sched)
}

// LinkRollup is the end-of-run record of the fattree-linkprobe/v1
// stream: the per-directed-channel contention summary. A
// contention-free run shows MaxQueue ≤ 1 everywhere; a contended run
// names the hot channel by index (up = 2*link, down = 2*link+1).
type LinkRollup struct {
	Rollup     string    `json:"rollup"` // always "links"
	DurationPS int64     `json:"duration_ps"`
	MaxQueue   []int32   `json:"max_queue"`
	BusyFrac   []float64 `json:"busy_frac"`
}

// schedPending returns the regular-event queue depth — summed across
// shards in a sharded run.
func (nw *Network) schedPending() int {
	if nw.sh != nil {
		return nw.sh.pending()
	}
	return nw.sched.Pending()
}

// obsFinalSample captures one last probe sample at the end of a run or
// stage — the scheduler discards daemon ticks queued past the final
// event, so the end state needs an explicit sample.
func (nw *Network) obsFinalSample() {
	if nw.ob == nil {
		return
	}
	if nw.ob.probes != nil {
		nw.ob.probes.Sample(nw.sched.Now())
	}
	if nw.ob.link != nil {
		nw.ob.link.Sample(nw.sched.Now())
	}
}

// obsInject records a packet entering the fabric at its source host.
func (nw *Network) obsInject(h *hostState, p *packet, m *message, now des.Time) {
	ob := nw.ob
	ob.pktInjected.Inc()
	if ob.trace != nil {
		ob.trace.Instant(tracePidHosts, int(h.id), now, "inject",
			obs.Str("msg", fmt.Sprintf("%d>%d", m.Src, m.Dst)),
			obs.Num("seq", float64(p.seq)))
	}
}

// obsTransmit records one channel transmission as a span on the link's
// trace lane.
func (nw *Network) obsTransmit(p *packet, ch *channel, start, dur des.Time) {
	ob := nw.ob
	ob.pktTx.Inc()
	if ob.trace != nil {
		m := &nw.msgs[p.msg]
		ob.trace.Complete(tracePidLinks, int(ch.id), start, dur,
			fmt.Sprintf("pkt %d>%d #%d", m.Src, m.Dst, p.seq),
			obs.Num("bytes", float64(p.size)),
			obs.Num("hop", float64(p.hop)))
	}
}

// obsHeadArrives records a packet header landing at a receiver.
func (nw *Network) obsHeadArrives(ch *channel, now des.Time) {
	if tr := nw.ob.trace; tr != nil {
		tr.Instant(tracePidLinks, int(ch.id), now, "head-arrives")
	}
}

// obsHostStall records an injection attempt blocked on credits.
func (nw *Network) obsHostStall(h *hostState, now des.Time) {
	ob := nw.ob
	ob.hostStalls.Inc()
	if ob.trace != nil {
		ob.trace.Instant(tracePidHosts, int(h.id), now, "blocked-on-credit")
	}
}

// obsSwitchStall records an output channel with waiting inputs but no
// downstream credit.
func (nw *Network) obsSwitchStall(out *channel, now des.Time) {
	ob := nw.ob
	ob.switchStalls.Inc()
	if ob.trace != nil {
		ob.trace.Instant(tracePidLinks, int(out.id), now, "blocked-on-credit")
	}
}

// obsDeliverPacket records payload arrival at the destination host.
func (nw *Network) obsDeliverPacket(p *packet) {
	nw.ob.bytesDelivered.Add(int64(p.size))
}

// obsDeliverMessage records a completed message: latency histogram plus
// a span on the destination host's trace lane.
func (nw *Network) obsDeliverMessage(m *message, lat, now des.Time) {
	ob := nw.ob
	ob.msgDelivered.Inc()
	ob.msgLatencyUS.Observe(float64(lat) / float64(des.Microsecond))
	if ob.trace != nil {
		ob.trace.Complete(tracePidHosts, m.Dst, m.startedAt, lat,
			fmt.Sprintf("msg %d>%d", m.Src, m.Dst),
			obs.Num("bytes", float64(m.Bytes)))
		ob.trace.Instant(tracePidHosts, m.Dst, now, "deliver",
			obs.Str("msg", fmt.Sprintf("%d>%d", m.Src, m.Dst)))
	}
}

// obsStage marks one barrier stage's span on the collective lane.
func (nw *Network) obsStage(i, msgs int, start, end des.Time) {
	if nw.ob == nil || nw.ob.trace == nil {
		return
	}
	nw.ob.trace.Complete(tracePidStages, 0, start, end-start,
		fmt.Sprintf("stage %d", i),
		obs.Num("messages", float64(msgs)))
}

// obsCollect freezes end-of-run gauges into the registry, writes the
// per-link rollup to the linkprobe stream, and exports the per-shard
// telemetry as labeled gauges plus a {"shards":...} record on the
// probe stream.
func (nw *Network) obsCollect(s *Stats) {
	ob := nw.ob
	if ob == nil {
		return
	}
	ob.reg.Gauge("netsim_event_queue_high_water").Max(int64(nw.schedMaxPending()))
	ob.reg.Gauge("netsim_events_executed").Set(int64(s.Events))
	ob.reg.Gauge("netsim_duration_ps").Set(int64(s.Duration))
	var maxQ int32
	for _, d := range ob.queueHW {
		if d > maxQ {
			maxQ = d
		}
	}
	ob.reg.Gauge("netsim_link_max_queue_depth").Max(int64(maxQ))
	if ob.link != nil {
		roll := LinkRollup{
			Rollup:     "links",
			DurationPS: int64(s.Duration),
			MaxQueue:   append([]int32(nil), ob.queueHW...),
			BusyFrac:   make([]float64, len(s.LinkBusy)),
		}
		if s.Duration > 0 {
			for i, b := range s.LinkBusy {
				roll.BusyFrac[i] = float64(b) / float64(s.Duration)
			}
		}
		ob.link.Record(roll)
	}
	if len(s.Shards) > 0 {
		for _, sh := range s.Shards {
			id := strconv.Itoa(sh.Shard)
			ob.reg.Gauge(obs.Labeled("netsim_shard_events", "shard", id)).Set(int64(sh.Events))
			ob.reg.Gauge(obs.Labeled("netsim_shard_stall_ns", "shard", id)).Set(sh.StallNS)
			ob.reg.Gauge(obs.Labeled("netsim_shard_mailbox_peak", "shard", id)).Set(int64(sh.MailboxPeak))
		}
		ob.reg.Gauge("netsim_shard_imbalance_milli").Set(int64(s.ShardImbalance() * 1000))
		if ob.probes != nil {
			ob.probes.Record(struct {
				Shards []ShardStats `json:"shards"`
			}{s.Shards})
		}
	}
}

// schedMaxPending returns the queue-depth high-water mark — the max
// across shards in a sharded run.
func (nw *Network) schedMaxPending() int {
	if nw.sh != nil {
		return nw.sh.maxPending()
	}
	return nw.sched.MaxPending()
}
