package netsim

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fattree/internal/des"
	"fattree/internal/obs"
	"fattree/internal/route"
	"fattree/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files")

func fig1Messages() []Message {
	return []Message{
		{Src: 0, Dst: 5, Bytes: 4096},
		{Src: 1, Dst: 9, Bytes: 2048},
		{Src: 4, Dst: 0, Bytes: 6000},
	}
}

// TestObservabilityEquivalence mirrors internal/hsd's compiled
// equivalence test: enabling metrics and tracing must leave every Stats
// field bit-identical, and enabling probes may change only Events (the
// sampler's own ticks run on the scheduler).
func TestObservabilityEquivalence(t *testing.T) {
	lft := fig1LFT()
	msgs := fig1Messages()
	stages := [][]Message{msgs[:2], msgs[2:]}
	// Dependent semantics need stage-1 participants to have stage-0
	// activity to gate on — a 2-stage recursive-doubling slice.
	depStages := [][]Message{
		{{Src: 0, Dst: 1, Bytes: 4096}, {Src: 1, Dst: 0, Bytes: 4096}},
		{{Src: 0, Dst: 2, Bytes: 2048}, {Src: 1, Dst: 3, Bytes: 2048}},
	}

	type runFn func(nw *Network) (Stats, error)
	runs := []struct {
		name string
		fn   runFn
	}{
		{"async", func(nw *Network) (Stats, error) { return nw.Run(msgs) }},
		{"barrier", func(nw *Network) (Stats, error) { return nw.RunStages(stages) }},
		{"dependent", func(nw *Network) (Stats, error) { return nw.RunDependent(depStages) }},
	}
	for _, run := range runs {
		base := DefaultConfig()
		base.KeepLatencies = true
		nw, err := New(lft, base)
		if err != nil {
			t.Fatal(err)
		}
		want, err := run.fn(nw)
		if err != nil {
			t.Fatalf("%s baseline: %v", run.name, err)
		}

		// Metrics + trace attached: everything identical.
		cfg := base
		cfg.Metrics = obs.NewRegistry()
		cfg.Trace = obs.NewTracer(&bytes.Buffer{})
		nw2, err := New(lft, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := run.fn(nw2)
		if err != nil {
			t.Fatalf("%s instrumented: %v", run.name, err)
		}
		if err := cfg.Trace.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.WithoutTelemetry(), got.WithoutTelemetry()) {
			t.Errorf("%s: metrics+trace perturbed Stats\nbase: %+v\nobs:  %+v", run.name, want, got)
		}
		if cfg.Metrics.Counter("netsim_messages_delivered_total").Value() != want.MessagesDelivered {
			t.Errorf("%s: registry delivered %d, stats %d", run.name,
				cfg.Metrics.Counter("netsim_messages_delivered_total").Value(), want.MessagesDelivered)
		}

		// Probes attached: identical except the sampler's own events.
		var probeOut bytes.Buffer
		cfg3 := base
		cfg3.Probes = obs.NewSampler(&probeOut, 2*des.Microsecond)
		nw3, err := New(lft, cfg3)
		if err != nil {
			t.Fatal(err)
		}
		got3, err := run.fn(nw3)
		if err != nil {
			t.Fatalf("%s probed: %v", run.name, err)
		}
		if err := cfg3.Probes.Flush(); err != nil {
			t.Fatal(err)
		}
		if got3.Events < want.Events {
			t.Errorf("%s: probed run executed fewer events (%d < %d)", run.name, got3.Events, want.Events)
		}
		got3.Events = want.Events
		if !reflect.DeepEqual(want.WithoutTelemetry(), got3.WithoutTelemetry()) {
			t.Errorf("%s: probes perturbed Stats beyond Events\nbase:   %+v\nprobed: %+v", run.name, want, got3)
		}
		if probeOut.Len() == 0 {
			t.Errorf("%s: no probe samples emitted", run.name)
		}
	}
}

// TestTraceGoldenSmallRun pins the full Chrome trace of a tiny
// deterministic run — the end-to-end golden for the trace exporter.
// Regenerate with `go test ./internal/netsim -run TraceGolden -update`.
func TestTraceGoldenSmallRun(t *testing.T) {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{2, 2}, []int{1, 1}, []int{1, 1}))
	lft := route.DModK(tp)
	cfg := DefaultConfig()
	var buf bytes.Buffer
	cfg.Trace = obs.NewTracer(&buf)
	cfg.TraceLabel = "golden"
	nw, err := New(lft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.RunStages([][]Message{
		{{Src: 0, Dst: 3, Bytes: 2048}},
		{{Src: 3, Dst: 0, Bytes: 2048}, {Src: 1, Dst: 2, Bytes: 4096}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_small_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace diverges from golden (%d vs %d bytes); run -update and inspect the diff",
			buf.Len(), len(want))
	}
}

// chromeTrace is the schema subset needed to validate exported traces.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string                 `json:"name"`
		Ph   string                 `json:"ph"`
		Pid  int                    `json:"pid"`
		Tid  int                    `json:"tid"`
		Args map[string]interface{} `json:"args"`
	} `json:"traceEvents"`
}

// TestTrace324RLFTValid runs one Shift stage of the paper's 324-node
// RLFT with full observability attached and validates the produced
// Chrome trace document — the acceptance check behind
// `ftsim -trace out.json -topo 324`.
func TestTrace324RLFTValid(t *testing.T) {
	if testing.Short() {
		t.Skip("324-node simulation in -short mode")
	}
	tp := topo.MustBuild(topo.Cluster324)
	lft := route.DModK(tp)
	n := tp.NumHosts()
	cfg := DefaultConfig()
	var traceBuf, probeBuf bytes.Buffer
	cfg.Trace = obs.NewTracer(&traceBuf)
	cfg.Metrics = obs.NewRegistry()
	cfg.Probes = obs.NewSampler(&probeBuf, 10*des.Microsecond)
	nw, err := New(lft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]Message, n)
	for i := range msgs {
		msgs[i] = Message{Src: i, Dst: (i + 5) % n, Bytes: 8 << 10}
	}
	st, err := nw.RunStages([][]Message{msgs})
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Probes.Flush(); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(traceBuf.Bytes(), &ct); err != nil {
		t.Fatalf("324-node trace is not valid Chrome trace JSON: %v", err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}
	phases := map[string]bool{}
	names := map[string]bool{}
	for _, ev := range ct.TraceEvents {
		phases[ev.Ph] = true
		names[ev.Name] = true
	}
	for _, ph := range []string{"M", "i", "X", "C"} {
		if !phases[ph] {
			t.Errorf("trace lacks ph=%q events", ph)
		}
	}
	for _, name := range []string{"inject", "head-arrives", "deliver", "stage 0", "event_queue"} {
		if !names[name] {
			t.Errorf("trace lacks %q events", name)
		}
	}
	// Registry totals must agree with Stats.
	if got := cfg.Metrics.Counter("netsim_messages_delivered_total").Value(); got != st.MessagesDelivered {
		t.Errorf("metrics delivered %d, stats %d", got, st.MessagesDelivered)
	}
	if got := cfg.Metrics.Counter("netsim_bytes_delivered_total").Value(); got != st.BytesDelivered {
		t.Errorf("metrics bytes %d, stats %d", got, st.BytesDelivered)
	}
	// Probe JSONL must contain link_util samples with one value per
	// directed channel.
	var sawUtil bool
	for _, line := range strings.Split(strings.TrimSpace(probeBuf.String()), "\n") {
		var rec struct {
			T      int64     `json:"t_ps"`
			Series string    `json:"series"`
			Values []float64 `json:"values"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad probe line %q: %v", line, err)
		}
		if rec.Series == "link_util" {
			sawUtil = true
			if len(rec.Values) != 2*len(tp.Links) {
				t.Fatalf("link_util has %d values, want %d", len(rec.Values), 2*len(tp.Links))
			}
		}
	}
	if !sawUtil {
		t.Error("no link_util samples in probe output")
	}
}

// TestProbeSnapshotWhileRunning samples the metrics registry from a
// second goroutine while the simulation runs — the -race proof that
// observability reads are safe concurrent with the hot path.
func TestProbeSnapshotWhileRunning(t *testing.T) {
	lft := fig1LFT()
	cfg := DefaultConfig()
	cfg.Metrics = obs.NewRegistry()
	var traceBuf bytes.Buffer
	cfg.Trace = obs.NewTracer(&traceBuf)
	nw, err := New(lft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			snap := cfg.Metrics.Snapshot()
			if snap.Counters["netsim_messages_delivered_total"] > 12 {
				t.Error("impossible delivery count")
			}
			cfg.Trace.Events()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	msgs := make([]Message, 0, 12)
	for i := 0; i < 12; i++ {
		msgs = append(msgs, Message{Src: i % 16, Dst: (i + 7) % 16, Bytes: 64 << 10})
	}
	_, err = nw.Run(msgs)
	close(stop)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileErrors(t *testing.T) {
	lft := fig1LFT()
	nw, _ := New(lft, DefaultConfig())
	st, err := nw.Run([]Message{{Src: 0, Dst: 5, Bytes: 2048}})
	if err != nil {
		t.Fatal(err)
	}
	if st.KeptLatencies {
		t.Error("KeptLatencies set without Config.KeepLatencies")
	}
	if _, err := st.Percentile(50); !errors.Is(err, ErrLatenciesNotKept) {
		t.Errorf("Percentile without retention = %v, want ErrLatenciesNotKept", err)
	}
	cfg := DefaultConfig()
	cfg.KeepLatencies = true
	nw2, _ := New(lft, cfg)
	st2, err := nw2.Run([]Message{{Src: 0, Dst: 5, Bytes: 2048}})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.KeptLatencies {
		t.Error("KeptLatencies not set")
	}
	if _, err := st2.Percentile(50); err != nil {
		t.Errorf("Percentile with retention: %v", err)
	}
	if _, err := st2.Percentile(-1); err == nil || errors.Is(err, ErrLatenciesNotKept) {
		t.Errorf("Percentile(-1) = %v, want a range error", err)
	}
}

// TestFlowLogHeaderOncePerNetwork asserts repeated runs on one Network
// write a single header.
func TestFlowLogHeaderOncePerNetwork(t *testing.T) {
	lft := fig1LFT()
	cfg := DefaultConfig()
	var log bytes.Buffer
	cfg.FlowLog = &log
	nw, _ := New(lft, cfg)
	for i := 0; i < 2; i++ {
		if _, err := nw.Run([]Message{{Src: 0, Dst: 5, Bytes: 2048}}); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("flow log has %d lines, want schema + 1 header + 2 records:\n%s", len(lines), log.String())
	}
	headers, stamps := 0, 0
	for _, l := range lines {
		if strings.HasPrefix(l, "src,") {
			headers++
		}
		if strings.HasPrefix(l, "# ") {
			stamps++
		}
	}
	if headers != 1 || stamps != 1 {
		t.Errorf("flow log has %d headers and %d schema stamps, want 1 each", headers, stamps)
	}
}
