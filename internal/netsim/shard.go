package netsim

// Conservative parallel DES, sharded by fat-tree sub-tree.
//
// The node set is partitioned into S shards: each leaf switch and its
// attached hosts form an indivisible sub-tree (so host injection and
// leaf-local delivery never cross a partition), leaf sub-trees are
// assigned to shards in contiguous blocks, and non-leaf switches are
// spread round-robin. Every shard runs the ordinary sequential event
// loop on its own scheduler over the nodes it owns.
//
// Correctness rests on lookahead: every cross-shard interaction rides a
// wire, so it reaches the neighbor no earlier than LinkLatency (L) after
// it was caused. The coordinator therefore repeats windows: compute
// M = min over shards of the earliest queued event, let every shard run
// all events in [M, M+L) in parallel, then exchange the cross-shard
// events produced (all stamped >= M+L by construction) through
// per-shard-pair mailboxes at the barrier. Mailbox drain order is
// sorted by (time, sender shard, send order), so the merged execution
// order — and with it every result — is deterministic for a given
// shard count.
//
// State ownership follows the partition. A channel's transmitter half
// (lastBit, busy, credits, reqs, requested) belongs to the shard of its
// from-node; the receiver input buffer belongs to the shard of its
// to-node. Packets never travel between shards as shared objects: a
// cross-shard hop copies the packet's fields into the mailbox entry and
// frees the sender-side packet, and the receiver materializes a fresh
// one from its own pool, so each shard's packet arena is strictly
// shard-private. Credit returns crossing a partition are delayed by L
// (they ride the reverse wire), which is exactly why sharded runs are
// bit-exact with the sequential loop only when no transmitter ever
// exhausts its credit budget — see docs/SIMULATOR.md.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"fattree/internal/des"
	"fattree/internal/topo"
)

// xEvent is one cross-shard event in flight: the POD payload of a
// scheduler event plus the packet fields a cross-shard arrival carries.
type xEvent struct {
	at         des.Time
	tailArrive des.Time
	kind       uint16
	ch         int32
	msg        int32
	seq        int32
	size       int32
	hop        int32
}

// shardRuntime is the coordinator state of a sharded run, kept on the
// root Network and reused across runs.
type shardRuntime struct {
	n         int
	lookahead des.Time
	nodeShard []int32 // node id -> owning shard

	// workers[i] is shard i's Network view: shared topology/channel/
	// host/message arenas, private scheduler, packet pool and stats.
	workers []*Network

	// mailbox[sender][receiver] accumulates cross-shard events during a
	// window; only the sender's goroutine appends, and only the
	// coordinator drains at the barrier.
	mailbox [][][]xEvent

	// inbox is the coordinator's scratch for sorting one receiver's
	// incoming events at the barrier.
	inbox []xEvent

	start []chan des.Time
	done  chan struct{}
	wg    sync.WaitGroup

	// Telemetry (reset per run): mailboxPeak[r] is the largest batch of
	// cross-shard events shard r received at one barrier (coordinator
	// only); windowWallNS accumulates the coordinator's wall-clock time
	// inside the window loop, so a shard's barrier stall is
	// approximately windowWallNS minus its own busy time.
	mailboxPeak  []int
	windowWallNS int64
}

// shardID and auxEvents live on Network (one per shard view):
// shardID is the shard a worker Network acts as; auxEvents counts
// events that exist only because of sharding (cross-partition credit
// returns), so merged event counts stay comparable to sequential runs.

// partitionNodes assigns every node to a shard: leaf sub-trees in
// contiguous blocks, upper switches round-robin.
func partitionNodes(t *topo.Topology, shards int) []int32 {
	ns := make([]int32, len(t.Nodes))
	if shards <= 1 || len(t.ByLevel) < 2 {
		return ns
	}
	leaves := t.ByLevel[1]
	for li, id := range leaves {
		ns[id] = int32(li * shards / len(leaves))
	}
	for j := 0; j < t.NumHosts(); j++ {
		h := t.Host(j)
		up := t.Ports[h.Up[0]]
		leaf := t.Ports[t.Links[up.Link].Upper].Node
		ns[h.ID] = ns[leaf]
	}
	for l := 2; l < len(t.ByLevel); l++ {
		for i, id := range t.ByLevel[l] {
			ns[id] = int32(i % shards)
		}
	}
	return ns
}

// setupShards (re)builds the shard runtime for the current config and
// prepares it for a fresh run. Called after reset().
func (nw *Network) setupShards() {
	S := nw.cfg.shardCount()
	if nw.sh == nil || nw.sh.n != S {
		sh := &shardRuntime{
			n:           S,
			nodeShard:   partitionNodes(nw.t, S),
			mailbox:     make([][][]xEvent, S),
			start:       make([]chan des.Time, S),
			done:        make(chan struct{}, S),
			mailboxPeak: make([]int, S),
		}
		for i := 0; i < S; i++ {
			sh.mailbox[i] = make([][]xEvent, S)
			sh.start[i] = make(chan des.Time, 1)
			w := &Network{t: nw.t, rt: nw.rt, cfg: nw.cfg, shardID: int32(i), sh: sh}
			w.sched = des.NewScheduler()
			w.sched.SetHandler(w.handle)
			sh.workers = append(sh.workers, w)
		}
		nw.sh = sh
	}
	sh := nw.sh
	sh.lookahead = nw.cfg.LinkLatency
	sh.windowWallNS = 0
	for i := range sh.workers {
		sh.mailboxPeak[i] = 0
		w := sh.workers[i]
		w.sched.Reset()
		w.stats = Stats{LatencyMin: 1 << 62}
		w.err = nil
		w.auxEvents = 0
		w.elided = 0
		w.endAt = 0
		w.busyNS = 0
		w.pkts = w.pkts[:0]
		w.freePkts = w.freePkts[:0]
		w.flowRecs = w.flowRecs[:0]
		w.flowSink = nw.flow != nil
		w.ob = nw.ob
		for j := range sh.mailbox[i] {
			sh.mailbox[i][j] = sh.mailbox[i][j][:0]
		}
	}
	for i := range nw.channels {
		nw.channels[i].shard = sh.nodeShard[nw.channels[i].from]
	}
	nw.refreshShardViews()
}

// refreshShardViews re-points every worker at the root's shared arenas;
// called after each load, since appends may have moved the backing
// arrays. It also propagates the run's eager-delivery mode, which
// loadDependent may have cleared on the root.
func (nw *Network) refreshShardViews() {
	for _, w := range nw.sh.workers {
		w.channels = nw.channels
		w.hosts = nw.hosts
		w.msgs = nw.msgs
		w.paths = nw.paths
		w.eager = nw.eager
	}
}

// schedule routes a cross-shard-capable event: local ones go straight
// onto this shard's queue, remote ones into the mailbox for the
// barrier exchange. Only called from a worker's own goroutine (or the
// coordinator between windows).
func (sh *shardRuntime) scheduleFrom(w *Network, shard int32, at des.Time, kind uint16, a, b int32, c int64) {
	if shard == w.shardID {
		w.sched.AtEvent(at, kind, a, b, c)
		return
	}
	xe := xEvent{at: at, kind: kind, ch: b}
	switch kind {
	case evArrive:
		p := &w.pkts[a]
		xe.msg = p.msg
		xe.seq = p.seq
		xe.size = p.size
		xe.hop = p.hop
		xe.tailArrive = des.Time(c)
	case evCreditX:
		xe.ch = a
	default:
		panic(fmt.Sprintf("netsim: unexpected cross-shard event kind %d", kind))
	}
	sh.mailbox[w.shardID][shard] = append(sh.mailbox[w.shardID][shard], xe)
}

// deliverMailboxes drains every mailbox into the receiving shards'
// schedulers, in deterministic (time, sender, send-order) order.
func (sh *shardRuntime) deliverMailboxes() {
	for r := 0; r < sh.n; r++ {
		in := sh.inbox[:0]
		for s := 0; s < sh.n; s++ {
			in = append(in, sh.mailbox[s][r]...)
			sh.mailbox[s][r] = sh.mailbox[s][r][:0]
		}
		sh.inbox = in
		if len(in) == 0 {
			continue
		}
		if len(in) > sh.mailboxPeak[r] {
			sh.mailboxPeak[r] = len(in)
		}
		sort.SliceStable(in, func(i, j int) bool { return in[i].at < in[j].at })
		w := sh.workers[r]
		for i := range in {
			xe := &in[i]
			switch xe.kind {
			case evArrive:
				pid := w.allocPkt()
				p := &w.pkts[pid]
				p.msg = xe.msg
				p.seq = xe.seq
				p.size = xe.size
				p.hop = xe.hop
				p.perPkt = false
				m := &w.msgs[xe.msg]
				p.pathOff, p.pathLen = m.pathOff, m.pathLen
				path := w.msgPath(m)
				if int(xe.hop) < len(path) {
					p.next = path[xe.hop]
				} else {
					p.next = -1
				}
				w.sched.AtEvent(xe.at, evArrive, pid, xe.ch, int64(xe.tailArrive))
			case evCreditX:
				w.sched.AtEvent(xe.at, evCreditX, xe.ch, 0, 0)
			}
		}
	}
}

// pending sums queued regular events across shards.
func (sh *shardRuntime) pending() int {
	n := 0
	for _, w := range sh.workers {
		n += w.sched.Pending()
	}
	return n
}

// maxPending returns the largest per-shard queue high-water mark.
func (sh *shardRuntime) maxPending() int {
	m := 0
	for _, w := range sh.workers {
		if p := w.sched.MaxPending(); p > m {
			m = p
		}
	}
	return m
}

// maxNow returns the latest shard clock — the global simulation time at
// a barrier.
func (sh *shardRuntime) maxNow() des.Time {
	var m des.Time
	for _, w := range sh.workers {
		if t := w.sched.Now(); t > m {
			m = t
		}
	}
	return m
}

// executed returns total events run minus sharding-only aux events plus
// eagerly elided deliveries, so the count matches what the sequential
// loop would report.
func (sh *shardRuntime) executed() uint64 {
	var n uint64
	for _, w := range sh.workers {
		n += w.sched.Executed() - w.auxEvents + w.elided
	}
	return n
}

// telemetry snapshots per-shard DES telemetry after a run: executed
// events, queue and mailbox high-water marks, wall-clock busy/stall
// split, and the calendar-queue pressure counters. Called with all
// workers stopped.
func (sh *shardRuntime) telemetry() []ShardStats {
	out := make([]ShardStats, sh.n)
	for i, w := range sh.workers {
		stall := sh.windowWallNS - w.busyNS
		if stall < 0 {
			stall = 0
		}
		out[i] = ShardStats{
			Shard:           i,
			Events:          w.sched.Executed() - w.auxEvents + w.elided,
			MaxPending:      w.sched.MaxPending(),
			MailboxPeak:     sh.mailboxPeak[i],
			BusyNS:          w.busyNS,
			StallNS:         stall,
			CalRebases:      w.sched.Rebases(),
			CalOverflowPeak: w.sched.OverflowHighWater(),
			CalSlotsPeak:    w.sched.OccupiedSlotsHighWater(),
		}
	}
	return out
}

// endTime returns the global end-of-run instant: the latest shard clock
// or eager delivery, whichever is later.
func (sh *shardRuntime) endTime() des.Time {
	m := sh.maxNow()
	for _, w := range sh.workers {
		if w.endAt > m {
			m = w.endAt
		}
	}
	return m
}

// startWorkers launches one goroutine per shard; each waits for a
// window bound, runs its local events strictly before it, and signals
// the barrier.
func (sh *shardRuntime) startWorkers() {
	for i := range sh.workers {
		w := sh.workers[i]
		ch := sh.start[i]
		sh.wg.Add(1)
		go func() {
			defer sh.wg.Done()
			for bound := range ch {
				t0 := time.Now()
				w.runWindow(bound)
				w.busyNS += time.Since(t0).Nanoseconds()
				sh.done <- struct{}{}
			}
		}()
	}
}

// runWindow executes this shard's events in [now, bound).
func (w *Network) runWindow(bound des.Time) {
	defer func() {
		if r := recover(); r != nil && w.err == nil {
			w.err = fmt.Errorf("netsim: shard %d: panic: %v", w.shardID, r)
		}
	}()
	w.sched.RunBefore(bound)
}

// stopWorkers tears the worker pool down at the end of a run.
func (sh *shardRuntime) stopWorkers() {
	for _, ch := range sh.start {
		close(ch)
	}
	sh.wg.Wait()
	// Fresh channels for the next run.
	for i := range sh.start {
		sh.start[i] = make(chan des.Time, 1)
	}
}

// pumpShards repeats conservative windows until every shard is idle.
// stage is used only for error messages (-1 for async runs).
func (nw *Network) pumpShards(stage int) error {
	sh := nw.sh
	t0 := time.Now()
	defer func() { sh.windowWallNS += time.Since(t0).Nanoseconds() }()
	var lastSample, lastLink des.Time
	probed := nw.ob != nil && nw.ob.probes != nil
	linked := nw.ob != nil && nw.ob.link != nil
	for {
		sh.deliverMailboxes()
		var min des.Time
		ok := false
		for _, w := range sh.workers {
			if t, has := w.sched.NextAt(); has && (!ok || t < min) {
				min, ok = t, true
			}
		}
		if !ok {
			return nil
		}
		bound := min + sh.lookahead
		for i := range sh.workers {
			sh.start[i] <- bound
		}
		for range sh.workers {
			<-sh.done
		}
		for _, w := range sh.workers {
			if w.err != nil {
				return w.err
			}
		}
		if nw.cfg.MaxEvents > 0 && sh.executed() > nw.cfg.MaxEvents {
			if stage >= 0 {
				return fmt.Errorf("netsim: stage %d exceeded %d events", stage, nw.cfg.MaxEvents)
			}
			return fmt.Errorf("netsim: exceeded %d events", nw.cfg.MaxEvents)
		}
		if probed {
			if iv := nw.ob.probes.Interval(); iv > 0 && bound-lastSample >= iv {
				nw.ob.probes.Sample(sh.maxNow())
				lastSample = bound
			}
		}
		if linked {
			if iv := nw.ob.link.Interval(); iv > 0 && bound-lastLink >= iv {
				nw.ob.link.Sample(sh.maxNow())
				lastLink = bound
			}
		}
		if p := nw.cfg.Progress; p != nil {
			// Workers are parked at the barrier (the done receives above
			// order their writes before these reads), so per-shard stats
			// are safe to sum here.
			var delivered int64
			for _, w := range sh.workers {
				delivered += w.stats.MessagesDelivered
			}
			p.publish(sh.maxNow(), int64(sh.executed()), delivered)
		}
	}
}

// kickAllHosts runs the injection attempt for every host on its owning
// shard's view. Coordinator-only (all shards quiesced).
func (nw *Network) kickAllHosts() {
	sh := nw.sh
	for j := range nw.hosts {
		w := sh.workers[sh.nodeShard[nw.t.HostID(j)]]
		w.kickHost(&nw.hosts[j])
	}
}

// alignClocks advances every shard clock (and the coordinator's) to t.
func (nw *Network) alignClocks(t des.Time) {
	for _, w := range nw.sh.workers {
		w.sched.AdvanceTo(t)
	}
	nw.sched.AdvanceTo(t)
}

// flowRec is one buffered flow-completion record of a sharded run;
// records are merged and written deterministically at run end.
type flowRec struct {
	src, dst   int
	bytes      int64
	start, end des.Time
	lat        des.Time
}

// mergeShardResults folds per-shard stats into the root Network and
// writes the merged flow log. delivered reports total completed
// messages.
func (nw *Network) mergeShardResults() (delivered int64) {
	sh := nw.sh
	var recs []flowRec
	for _, w := range sh.workers {
		ws := &w.stats
		nw.stats.BytesDelivered += ws.BytesDelivered
		nw.stats.MessagesDelivered += ws.MessagesDelivered
		nw.stats.LatencySum += ws.LatencySum
		nw.stats.OutOfOrderPackets += ws.OutOfOrderPackets
		if ws.MessagesDelivered > 0 {
			if ws.LatencyMin < nw.stats.LatencyMin {
				nw.stats.LatencyMin = ws.LatencyMin
			}
			if ws.LatencyMax > nw.stats.LatencyMax {
				nw.stats.LatencyMax = ws.LatencyMax
			}
		}
		nw.stats.Latencies = append(nw.stats.Latencies, ws.Latencies...)
		ws.Latencies = ws.Latencies[:0]
		recs = append(recs, w.flowRecs...)
		delivered += ws.MessagesDelivered
	}
	if nw.flow != nil && len(recs) > 0 {
		sort.Slice(recs, func(i, j int) bool {
			a, b := &recs[i], &recs[j]
			if a.end != b.end {
				return a.end < b.end
			}
			if a.start != b.start {
				return a.start < b.start
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.dst < b.dst
		})
		for i := range recs {
			nw.writeFlowRec(&recs[i])
		}
	}
	return delivered
}

// runShardedAsync is the sharded form of Run (msgs != nil) and
// RunDependent (depStages != nil).
func (nw *Network) runShardedAsync(msgs []Message, depStages [][]Message) (Stats, error) {
	nw.reset()
	nw.setupShards()
	var err error
	if depStages != nil {
		err = nw.loadDependent(depStages)
	} else {
		err = nw.load(msgs)
	}
	if err != nil {
		return Stats{}, nw.flushed(err)
	}
	nw.refreshShardViews()
	nw.startSamplers()
	sh := nw.sh
	sh.startWorkers()
	nw.kickAllHosts()
	perr := nw.pumpShards(-1)
	sh.stopWorkers()
	if perr != nil {
		return Stats{}, nw.flushed(perr)
	}
	nw.alignClocks(sh.endTime())
	delivered := nw.mergeShardResults()
	if rem := int64(nw.remaining) - delivered; rem != 0 {
		return Stats{}, nw.flushed(fmt.Errorf("netsim: deadlock with %d messages undelivered", rem))
	}
	nw.obsFinalSample()
	st := nw.collect()
	st.Events = sh.executed()
	return st, nw.flushed(nil)
}

// runShardedStages is the sharded form of RunStages/RunStagesJitter.
func (nw *Network) runShardedStages(stages [][]Message, jitter des.Time, seed int64) (Stats, error) {
	nw.reset()
	nw.setupShards()
	rng := rand.New(rand.NewSource(seed))
	sh := nw.sh
	sh.startWorkers()
	var durs []des.Time
	var last des.Time
	var deliveredBefore int64
	loaded := 0
	for i, st := range stages {
		if err := nw.load(st); err != nil {
			sh.stopWorkers()
			return Stats{}, nw.flushed(err)
		}
		loaded += len(st)
		nw.refreshShardViews()
		if jitter > 0 {
			nw.applyJitter(st, jitter, rng)
		}
		nw.kickAllHosts()
		nw.startSamplers()
		if err := nw.pumpShards(i); err != nil {
			sh.stopWorkers()
			return Stats{}, nw.flushed(err)
		}
		var delivered int64
		for _, w := range sh.workers {
			delivered += w.stats.MessagesDelivered
		}
		if delivered-deliveredBefore != int64(len(st)) {
			sh.stopWorkers()
			return Stats{}, nw.flushed(fmt.Errorf(
				"netsim: stage %d deadlocked with %d messages undelivered",
				i, int64(len(st))-(delivered-deliveredBefore)))
		}
		deliveredBefore = delivered
		end := sh.endTime()
		nw.alignClocks(end)
		nw.obsFinalSample()
		durs = append(durs, end-last)
		nw.obsStage(i, len(st), last, end)
		last = end
	}
	sh.stopWorkers()
	nw.mergeShardResults()
	st := nw.collect()
	st.Events = sh.executed()
	st.StageDurations = durs
	return st, nw.flushed(nil)
}

// writeFlowRec appends one merged flow record to the buffered CSV.
func (nw *Network) writeFlowRec(r *flowRec) {
	var m message
	m.Src, m.Dst, m.Bytes = r.src, r.dst, r.bytes
	m.startedAt = r.start
	nw.writeFlowRecord(&m, r.end, r.lat)
}
