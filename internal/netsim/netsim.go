// Package netsim is a packet-level, event-driven model of an
// InfiniBand-like fat-tree network: virtual cut-through switching, credit
// based link-level flow control, input-buffered switches with
// head-of-line blocking, and PCIe-capped host injection. It reproduces
// the role of the paper's OMNeT++ simulation platform (Section II),
// calibrated to the same nominal rates: QDR links at 4000 MB/s and PCIe
// Gen2 8x hosts at 3250 MB/s.
//
// Traffic follows the deterministic forwarding tables computed by the
// route package, so contention (or its absence) is exactly the phenomenon
// the HSD model predicts — but here it plays out in time, producing
// effective bandwidth and latency numbers.
//
// The hot core is allocation-free in steady state: packets, messages and
// per-port bookkeeping live in flat arenas indexed by integer ids, and
// every scheduler event is a plain-old-data dispatch record (see
// internal/des), so repeated runs on one Network reuse all state. Set
// Config.Shards > 1 for conservative parallel execution partitioned by
// fat-tree sub-tree (see shard.go and docs/SIMULATOR.md).
package netsim

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"time"

	"fattree/internal/des"
	"fattree/internal/obs"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// FlowLogSchema is the version stamp written as a leading "# ..."
// comment line of every flow-completion CSV, so downstream tooling can
// detect the format. Bump the /vN suffix on incompatible changes.
const FlowLogSchema = "fattree-flowlog/v1"

// AutoShards selects one shard per available CPU (GOMAXPROCS) when set
// as Config.Shards.
const AutoShards = -1

// Config calibrates the simulator.
type Config struct {
	// LinkBandwidth is the wire rate in bytes/second (QDR: 4000 MB/s).
	LinkBandwidth float64
	// HostBandwidth caps host injection in bytes/second (PCIe Gen2 8x:
	// 3250 MB/s).
	HostBandwidth float64
	// LinkLatency is the propagation + SerDes delay per hop.
	LinkLatency des.Time
	// SwitchLatency is the per-switch processing (cut-through) delay.
	SwitchLatency des.Time
	// MTU is the packet payload size in bytes (IB: 2048).
	MTU int
	// BufferPackets is the number of MTU-sized input-buffer slots per
	// switch port — the credit budget of virtual cut-through.
	BufferPackets int
	// MaxEvents aborts runaway simulations (0 = unbounded).
	MaxEvents uint64
	// Shards selects the event-loop parallelism: 0 or 1 runs the
	// sequential loop (bit-exact with the golden traces); N > 1 runs a
	// conservative parallel simulation on N sub-tree partitions with
	// lookahead equal to LinkLatency; AutoShards (-1) uses GOMAXPROCS.
	// Sharding requires LinkLatency > 0 and deterministic routing (no
	// PerPacketRouting). docs/SIMULATOR.md spells out when sharded
	// results are bit-exact with the sequential loop.
	Shards int
	// PerPacketRouting re-asks the router for a path for every packet
	// instead of once per message — how an adaptive fabric behaves.
	// With a randomized router this lets packets overtake each other;
	// Stats.OutOfOrderPackets counts the damage.
	PerPacketRouting bool
	// KeepLatencies retains every message latency so Stats.Percentile
	// works; off by default to keep big runs lean.
	KeepLatencies bool
	// FlowLog, when non-nil, receives the flow-completion CSV: a
	// "# fattree-flowlog/v1" schema stamp and a header line (written
	// once per Network) followed by one record per completed message —
	// src,dst,bytes,start_ps,end_ps,latency_ps. docs/SIMULATOR.md
	// documents the schema. Writes are buffered and flushed when each
	// Run/RunStages/RunDependent returns, so CSV logging no longer
	// dominates large runs. Useful for post-processing runs with
	// external tooling.
	FlowLog io.Writer
	// Metrics, when non-nil, receives the simulator's counters,
	// gauges and histograms (metric names in docs/OBSERVABILITY.md).
	Metrics *obs.Registry
	// Probes, when non-nil, samples per-link utilization, input-buffer
	// occupancy, credit stalls and event-queue depth at the sampler's
	// interval of simulated time, as JSONL. Probe ticks are scheduler
	// events, so Stats.Events grows slightly when enabled; message
	// timings and all other Stats fields are unaffected.
	Probes *obs.Sampler
	// LinkProbes, when non-nil, receives the fattree-linkprobe/v1
	// stream: a "queue_depth" and a "link_util" series with one value
	// per directed channel, sampled at the sampler's interval of
	// simulated time, plus one end-of-run rollup record carrying each
	// channel's max input-buffer depth and busy fraction. Like Probes,
	// sampler ticks ride the scheduler, so only Stats.Events grows.
	LinkProbes *obs.Sampler
	// Progress, when non-nil, receives live run counters (simulated
	// time, events executed, messages delivered) that a wall-clock
	// reporter goroutine reads concurrently — see Progress.Report.
	// Publishing rides daemon ticks in the sequential loop and window
	// barriers in sharded runs, so the zero-progress hot path pays
	// nothing.
	Progress *Progress
	// Trace, when non-nil, records message/packet lifecycle events
	// (inject, head-arrives, blocked-on-credit, deliver) and per-stage
	// phase markers in Chrome trace-event form — open the file in
	// Perfetto or chrome://tracing.
	Trace *obs.Tracer
	// TraceLabel names the collective-phase lane of the trace;
	// mpi.Job.SimulateMode sets it to the sequence name when empty.
	TraceLabel string
}

// DefaultConfig returns the paper's calibration.
func DefaultConfig() Config {
	return Config{
		LinkBandwidth: 4000e6,
		HostBandwidth: 3250e6,
		LinkLatency:   100 * des.Nanosecond,
		SwitchLatency: 100 * des.Nanosecond,
		MTU:           2048,
		BufferPackets: 8,
	}
}

func (c Config) validate() error {
	if c.LinkBandwidth <= 0 || c.HostBandwidth <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth")
	}
	if c.MTU < 1 {
		return fmt.Errorf("netsim: MTU must be at least 1 byte")
	}
	if c.BufferPackets < 1 {
		return fmt.Errorf("netsim: need at least one buffer slot per port")
	}
	if c.LinkLatency < 0 || c.SwitchLatency < 0 {
		return fmt.Errorf("netsim: negative latency")
	}
	if c.Shards < AutoShards {
		return fmt.Errorf("netsim: Shards = %d (want >= %d)", c.Shards, AutoShards)
	}
	if c.shardCount() > 1 {
		if c.LinkLatency <= 0 {
			return fmt.Errorf("netsim: sharded execution needs LinkLatency > 0 (the conservative lookahead)")
		}
		if c.PerPacketRouting {
			return fmt.Errorf("netsim: sharded execution requires deterministic routing (PerPacketRouting off)")
		}
	}
	return nil
}

// shardCount resolves the Shards knob to a concrete shard count.
func (c Config) shardCount() int {
	switch {
	case c.Shards == AutoShards:
		return runtime.GOMAXPROCS(0)
	case c.Shards <= 1:
		return 1
	default:
		return c.Shards
	}
}

// Message is one MPI-level send.
type Message struct {
	Src, Dst int
	Bytes    int64
}

// Stats summarizes a run.
type Stats struct {
	// Duration is the simulated makespan.
	Duration des.Time
	// BytesDelivered counts payload bytes that reached their
	// destination hosts.
	BytesDelivered int64
	// MessagesDelivered counts completed messages.
	MessagesDelivered int64
	// LatencySum/Min/Max aggregate message latencies (injection start
	// of the first packet to tail arrival of the last).
	LatencySum, LatencyMin, LatencyMax des.Time
	// Events is the number of simulator events executed.
	Events uint64
	// StageDurations holds the per-stage makespans in barrier mode.
	StageDurations []des.Time
	// LinkBusy is the cumulative transmit-busy time per directed
	// channel (2 per cable: up = 2*link, down = 2*link+1).
	LinkBusy []des.Time
	// OutOfOrderPackets counts packet arrivals whose sequence number
	// did not match the in-order expectation at the destination.
	OutOfOrderPackets int64
	// Latencies holds every message latency, ascending, when
	// Config.KeepLatencies is set.
	Latencies []des.Time
	// KeptLatencies records whether the run retained per-message
	// latencies (Config.KeepLatencies), so Percentile can distinguish
	// "retention was off" from "nothing was delivered".
	KeptLatencies bool
	// Shards holds per-event-loop DES telemetry: one entry for a
	// sequential run, one per shard for a sharded run. The wall-clock
	// fields vary run to run — compare runs across shard counts or
	// reruns with WithoutTelemetry.
	Shards []ShardStats
}

// ShardStats is one event loop's telemetry for a run — load balance
// and scheduler pressure, not simulation results.
type ShardStats struct {
	// Shard is the loop's index (always 0 for sequential runs).
	Shard int `json:"shard"`
	// Events counts regular events this loop executed: sharding-only
	// aux events excluded, eagerly elided deliveries included, so the
	// per-shard counts sum to Stats.Events.
	Events uint64 `json:"events"`
	// MaxPending is this loop's regular-event queue high-water mark.
	MaxPending int `json:"max_pending"`
	// MailboxPeak is the largest batch of cross-shard events this shard
	// received at one window barrier (0 for sequential runs).
	MailboxPeak int `json:"mailbox_peak"`
	// BusyNS is wall-clock time spent executing events; StallNS
	// approximates wall-clock time spent idle at window barriers
	// waiting for slower shards (the coordinator's total window time
	// minus this shard's busy time).
	BusyNS  int64 `json:"busy_ns"`
	StallNS int64 `json:"stall_ns"`
	// Calendar-queue pressure (see internal/des): overflow-rebase
	// count, overflow-list high-water and occupied-slot high-water.
	CalRebases      uint64 `json:"cal_rebases"`
	CalOverflowPeak int    `json:"cal_overflow_peak"`
	CalSlotsPeak    int    `json:"cal_slots_peak"`
}

// WithoutTelemetry returns a copy of s with the per-shard telemetry
// cleared — the deterministic, workload-defined remainder that
// equivalence tests compare across shard counts and reruns.
func (s Stats) WithoutTelemetry() Stats {
	s.Shards = nil
	return s
}

// ShardImbalance returns the max/mean ratio of per-shard executed
// events — 1.0 is a perfectly balanced run, and 0 means no telemetry
// was recorded. The post-run summary parallel-DES tuning starts from.
func (s Stats) ShardImbalance() float64 {
	if len(s.Shards) == 0 {
		return 0
	}
	var max, sum uint64
	for _, sh := range s.Shards {
		sum += sh.Events
		if sh.Events > max {
			max = sh.Events
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.Shards))
	return float64(max) / mean
}

// ErrLatenciesNotKept is returned by Stats.Percentile when the run did
// not retain per-message latencies.
var ErrLatenciesNotKept = errors.New(
	"netsim: latencies were not retained; set Config.KeepLatencies before the run to use Stats.Percentile")

// ErrNoLatencies is returned by Stats.Percentile when retention was on
// but the run delivered no messages, so there is nothing to rank.
var ErrNoLatencies = errors.New(
	"netsim: no messages were delivered, so no latencies to rank")

// Percentile returns the p-th (0..100) latency percentile; requires
// Config.KeepLatencies. It reports ErrLatenciesNotKept when retention
// was off and ErrNoLatencies when nothing was delivered — both sentinel
// errors callers can test with errors.Is.
func (s Stats) Percentile(p float64) (des.Time, error) {
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("netsim: percentile %v out of range [0,100]", p)
	}
	if len(s.Latencies) == 0 {
		if !s.KeptLatencies {
			return 0, ErrLatenciesNotKept
		}
		return 0, ErrNoLatencies
	}
	idx := int(p / 100 * float64(len(s.Latencies)-1))
	return s.Latencies[idx], nil
}

// EffectiveBandwidth returns aggregate delivered bytes per second.
func (s Stats) EffectiveBandwidth() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.BytesDelivered) / (float64(s.Duration) / float64(des.Second))
}

// MeanLatency returns the average message latency.
func (s Stats) MeanLatency() des.Time {
	if s.MessagesDelivered == 0 {
		return 0
	}
	return s.LatencySum / des.Time(s.MessagesDelivered)
}

// MaxLinkUtilization returns the busiest directed channel's busy
// fraction of the makespan — 1.0 means some wire never went idle (a
// saturated hot spot).
func (s Stats) MaxLinkUtilization() float64 {
	if s.Duration <= 0 {
		return 0
	}
	var max des.Time
	for _, b := range s.LinkBusy {
		if b > max {
			max = b
		}
	}
	return float64(max) / float64(s.Duration)
}

// SaturatedLinks counts directed channels busier than the threshold
// fraction of the makespan.
func (s Stats) SaturatedLinks(threshold float64) int {
	if s.Duration <= 0 {
		return 0
	}
	n := 0
	for _, b := range s.LinkBusy {
		if float64(b)/float64(s.Duration) >= threshold {
			n++
		}
	}
	return n
}

// intQueue is a FIFO of int32 ids with an advancing head, compacted in
// place so steady-state operation never reallocates.
type intQueue struct {
	items []int32
	head  int
}

func (q *intQueue) push(v int32) {
	if q.head > 32 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, v)
}

func (q *intQueue) pop() int32 {
	v := q.items[q.head]
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return v
}

func (q *intQueue) front() int32 { return q.items[q.head] }
func (q *intQueue) len() int     { return len(q.items) - q.head }
func (q *intQueue) reset()       { q.items = q.items[:0]; q.head = 0 }

// channel is one direction of a cable: a transmitter plus the receiver's
// input buffer. Channels live in one flat slice indexed by id; buffer
// and arbitration FIFOs hold packet/channel ids, not pointers.
type channel struct {
	lastBit des.Time // busy until (tail departure of current packet)
	busy    des.Time // cumulative transmit occupancy
	rate    float64  // transmitter bytes/second
	serMTU  des.Time // serTime(MTU, rate), precomputed — most packets are full

	id       int32
	from, to topo.NodeID
	fromHost int32 // host index of the from node, or -1 for a switch
	toHost   int32 // host index of the to node, or -1 for a switch
	shard    int32 // owning shard of the transmitter side (from node)

	// Receiver input buffer (virtual cut-through credits).
	credits int32
	buf     intQueue // packet ids; front is at the switch crossbar head

	// Output arbitration at the transmitter (switch side): input
	// channels whose buffer head wants this channel, FIFO.
	reqs intQueue // channel ids
	// requested marks that this channel's buffer head is already queued
	// at its output channel (avoid duplicate requests).
	requested bool
}

// packet is one MTU-or-less unit of a message in flight. Packets are
// pooled: deliver returns the id to a free list for the next injection.
type packet struct {
	tailArrive des.Time // when the last bit reaches the current node
	msg        int32    // message id
	seq        int32    // 0-based position within the message
	hop        int32    // index of the channel traversed next
	next       int32    // channel id at path[hop], -1 past the last hop
	size       int32    // payload bytes
	// pathOff/pathLen mirror the message's route bounds in the shared
	// path arena, so per-hop forwarding never reloads the message.
	pathOff, pathLen int32
	// ownPath holds the per-packet route under PerPacketRouting; its
	// capacity is recycled with the packet. Empty means "use the
	// message path".
	ownPath []int32
	perPkt  bool
}

// message tracks send/receive progress of one Message. The route is a
// slice of the Network's shared path arena.
type message struct {
	Message
	pathOff, pathLen   int32
	packets            int32
	sentPkts, recvPkts int32
	startedAt          des.Time
	// notBefore delays injection (simulated OS jitter / skew); zero
	// means immediately eligible.
	notBefore des.Time
	// stage tags the collective stage in dependent mode (-1 otherwise).
	stage    int32
	started  bool
	timerSet bool
}

// hostState is the injection queue of one end-port.
type hostState struct {
	id    int32
	up    int32    // channel id host -> leaf
	queue intQueue // message ids; nextIn is the queue head
	// nextIn indexes the next message to inject within queue.items —
	// the queue is never popped (delivery bookkeeping revisits it), so
	// it is a plain slice with a cursor.
	nextIn int

	// Dependent-mode bookkeeping: per stage, how many of this host's
	// sends have not yet fully left the NIC and how many expected
	// receives have not yet arrived. readyStage is the first stage the
	// host may inject into (all earlier stages complete).
	sendLeft, recvLeft []int32
	readyStage         int32
	dependent          bool
	shard              int32
}

// stageComplete reports whether the host finished stage s.
func (h *hostState) stageComplete(s int32) bool {
	return h.sendLeft[s] == 0 && h.recvLeft[s] == 0
}

// Dispatch-event kinds (see des.Handler). evCreditX and evKickAux exist
// only in sharded runs and are excluded from Stats.Events so sequential
// and sharded event counts agree.
const (
	evKick    uint16 = iota // a = host id
	evArrive                // a = packet, b = channel, c = tailArrive
	evDepart                // a = packet, b = channel, c = from-buffer channel id or -1
	evDeliver               // a = packet, b = channel
	evKickAux               // a = host id (sharded stage start)
	evCreditX               // a = channel id (sharded cross-partition credit return)
)

// Network is a simulator instance bound to a topology and routing. All
// run state lives in flat arenas reused across runs, so a Network can
// drive many simulations without reallocating its hot structures.
type Network struct {
	t   *topo.Topology
	rt  route.Router
	cfg Config

	sched    *des.Scheduler
	channels []channel
	hosts    []hostState

	msgs     []message
	paths    []int32 // shared path arena, sliced per message
	pkts     []packet
	freePkts []int32

	walkBuf []int32 // per-packet routing scratch

	stats     Stats
	remaining int // undelivered messages
	err       error

	// Eager final-hop delivery (perf): hosts never back-pressure, so
	// once a packet starts its last hop its delivery instant is fully
	// determined and the arrive/deliver events carry no decisions. When
	// nothing observes them (no obs hooks, no flow log, no dependency
	// bookkeeping) the simulator completes delivery inline at transmit
	// time instead, stamped with the true arrival time. elided counts
	// the skipped events so Stats.Events matches an instrumented run;
	// endAt tracks the latest delivery so the clock can be advanced to
	// where the last elided event would have run.
	eager  bool
	elided uint64
	endAt  des.Time

	// busyNS accumulates wall-clock time spent inside the event loop
	// (drain for the sequential path, runWindow for shard workers) —
	// the BusyNS half of ShardStats.
	busyNS int64

	// Buffered flow log (nil when Config.FlowLog is nil); flushed when
	// each run returns.
	flow        *bufio.Writer
	flowScratch []byte

	// Observability (nil when disabled; see obs.go).
	ob            *simObs
	traceMetaDone bool
	flowHeader    bool

	// Sharded runtime (nil until a sharded run; see shard.go). On the
	// root Network sh coordinates; on per-shard worker views (which
	// share the arenas above but own their scheduler, packet pool and
	// stats) shardID identifies the shard and auxEvents counts events
	// that exist only because of sharding, so merged event totals match
	// the sequential loop.
	sh        *shardRuntime
	shardID   int32
	auxEvents uint64
	// flowRecs buffers flow completions on worker views (flowSink set);
	// the coordinator merges and writes them deterministically.
	flowRecs []flowRec
	flowSink bool
}

// New creates a simulator for the topology/routing pair.
func New(rt route.Router, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nw := &Network{t: rt.Topology(), rt: rt, cfg: cfg}
	if cfg.FlowLog != nil {
		nw.flow = bufio.NewWriterSize(cfg.FlowLog, 1<<16)
	}
	return nw, nil
}

// reset rebuilds the dynamic state for a fresh run, reusing every arena
// the previous run left behind.
func (nw *Network) reset() {
	t := nw.t
	if nw.sched == nil {
		nw.sched = des.NewScheduler()
		nw.sched.SetHandler(nw.handle)
	} else {
		nw.sched.Reset()
	}
	nw.stats = Stats{LatencyMin: 1 << 62}
	nw.err = nil
	nw.remaining = 0
	nw.msgs = nw.msgs[:0]
	nw.paths = nw.paths[:0]
	nw.pkts = nw.pkts[:0]
	nw.freePkts = nw.freePkts[:0]
	if nw.channels == nil {
		nw.channels = make([]channel, 2*len(t.Links))
	}
	for i := range t.Links {
		lk := &t.Links[i]
		lower := t.Ports[lk.Lower].Node
		upper := t.Ports[lk.Upper].Node
		up := &nw.channels[2*i]
		down := &nw.channels[2*i+1]
		*up = channel{
			id: int32(2 * i), from: lower, to: upper,
			fromHost: hostIndex(t, lower), toHost: hostIndex(t, upper),
			rate: nw.cfg.LinkBandwidth, credits: int32(nw.cfg.BufferPackets),
			buf: up.buf, reqs: up.reqs,
		}
		*down = channel{
			id: int32(2*i + 1), from: upper, to: lower,
			fromHost: hostIndex(t, upper), toHost: hostIndex(t, lower),
			rate: nw.cfg.LinkBandwidth, credits: int32(nw.cfg.BufferPackets),
			buf: down.buf, reqs: down.reqs,
		}
		up.buf.reset()
		up.reqs.reset()
		down.buf.reset()
		down.reqs.reset()
		if up.fromHost >= 0 {
			// Host injection is PCIe capped; host reception is an
			// effectively infinite sink.
			up.rate = nw.cfg.HostBandwidth
			down.credits = 1 << 30
		}
		up.serMTU = serTime(int64(nw.cfg.MTU), up.rate)
		down.serMTU = serTime(int64(nw.cfg.MTU), down.rate)
	}
	if nw.hosts == nil {
		nw.hosts = make([]hostState, t.NumHosts())
	}
	for j := 0; j < t.NumHosts(); j++ {
		h := &nw.hosts[j]
		upPort := t.Ports[t.Host(j).Up[0]]
		q := h.queue
		q.reset()
		*h = hostState{id: int32(j), up: int32(2 * upPort.Link), queue: q}
	}
	nw.ob = nw.newSimObs()
	nw.elided = 0
	nw.endAt = 0
	nw.busyNS = 0
	nw.eager = nw.ob == nil && nw.flow == nil && !nw.cfg.PerPacketRouting
	if p := nw.cfg.Progress; p != nil {
		p.beginRun()
	}
	if nw.flow != nil && !nw.flowHeader {
		nw.flowHeader = true
		fmt.Fprintln(nw.flow, "# "+FlowLogSchema)
		fmt.Fprintln(nw.flow, "src,dst,bytes,start_ps,end_ps,latency_ps")
	}
}

// hostIndex returns the host index of a node, or -1 for a switch.
func hostIndex(t *topo.Topology, id topo.NodeID) int32 {
	n := t.Node(id)
	if n.Kind != topo.Host {
		return -1
	}
	return int32(n.Index)
}

// handle dispatches POD scheduler events — the simulator's event loop.
func (nw *Network) handle(kind uint16, a, b int32, c int64) {
	switch kind {
	case evArrive:
		nw.arriveHeader(a, b, des.Time(c))
	case evDepart:
		nw.departTail(a, b, int32(c))
	case evDeliver:
		nw.deliverAt(a, nw.sched.Now())
	case evKick, evKickAux:
		nw.kickHost(&nw.hosts[a])
	case evCreditX:
		nw.auxEvents++ // no sequential counterpart; see shard.go
		ch := &nw.channels[a]
		ch.credits++
		nw.wakeTransmitter(ch)
	}
}

// drain runs the sequential event loop to completion by pulling
// dispatch events straight off the scheduler — the same pop order as
// sched.Run, minus one indirect Handler call per event. Reports false
// when cfg.MaxEvents was exceeded with events still pending.
func (nw *Network) drain() bool {
	t0 := time.Now()
	defer func() { nw.busyNS += time.Since(t0).Nanoseconds() }()
	sched := nw.sched
	max := nw.cfg.MaxEvents
	start := sched.Executed()
	for {
		kind, a, b, c, ok := sched.NextEvent()
		if !ok {
			return true
		}
		switch kind {
		case evArrive:
			nw.arriveHeader(a, b, des.Time(c))
		case evDepart:
			nw.departTail(a, b, int32(c))
		case evDeliver:
			nw.deliverAt(a, sched.Now())
		case evKick, evKickAux:
			nw.kickHost(&nw.hosts[a])
		case evCreditX:
			nw.auxEvents++ // no sequential counterpart; see shard.go
			ch := &nw.channels[a]
			ch.credits++
			nw.wakeTransmitter(ch)
		}
		if max > 0 && sched.Executed()-start >= max && sched.Pending() > 0 {
			return false
		}
	}
}

// chanID maps a route hop to a channel index.
func chanID(link topo.LinkID, up bool) int32 {
	if up {
		return int32(2 * link)
	}
	return int32(2*link + 1)
}

// pathOf appends the channel path for a src->dst flow to the shared
// arena and returns its bounds.
func (nw *Network) pathOf(src, dst int) (off, n int32, err error) {
	off = int32(len(nw.paths))
	err = nw.rt.Walk(src, dst, func(l topo.LinkID, up bool) {
		nw.paths = append(nw.paths, chanID(l, up))
	})
	return off, int32(len(nw.paths)) - off, err
}

// msgPath returns the route of message m.
func (nw *Network) msgPath(m *message) []int32 {
	return nw.paths[m.pathOff : m.pathOff+m.pathLen]
}

// pktPath returns the route packet p follows.
func (nw *Network) pktPath(p *packet) []int32 {
	if p.perPkt {
		return p.ownPath
	}
	return nw.paths[p.pathOff : p.pathOff+p.pathLen]
}

// allocPkt takes a packet id from the pool.
func (nw *Network) allocPkt() int32 {
	if n := len(nw.freePkts); n > 0 {
		id := nw.freePkts[n-1]
		nw.freePkts = nw.freePkts[:n-1]
		return id
	}
	nw.pkts = append(nw.pkts, packet{})
	return int32(len(nw.pkts) - 1)
}

// load enqueues messages on their source hosts (keeping input order per
// host).
func (nw *Network) load(msgs []Message) error {
	for _, m := range msgs {
		if m.Src == m.Dst {
			return fmt.Errorf("netsim: self message at host %d", m.Src)
		}
		if m.Src < 0 || m.Src >= len(nw.hosts) || m.Dst < 0 || m.Dst >= len(nw.hosts) {
			return fmt.Errorf("netsim: message %d->%d out of range", m.Src, m.Dst)
		}
		if m.Bytes < 1 {
			return fmt.Errorf("netsim: message %d->%d has %d bytes", m.Src, m.Dst, m.Bytes)
		}
		var off, n int32
		if !nw.cfg.PerPacketRouting {
			var err error
			off, n, err = nw.pathOf(m.Src, m.Dst)
			if err != nil {
				return err
			}
		}
		pkts := int32((m.Bytes + int64(nw.cfg.MTU) - 1) / int64(nw.cfg.MTU))
		id := int32(len(nw.msgs))
		nw.msgs = append(nw.msgs, message{
			Message: m, pathOff: off, pathLen: n, packets: pkts, stage: -1,
		})
		nw.hosts[m.Src].queue.items = append(nw.hosts[m.Src].queue.items, id)
		nw.remaining++
	}
	if p := nw.cfg.Progress; p != nil {
		p.addTotal(int64(len(msgs)))
	}
	return nil
}

// Run simulates all messages with asynchronous per-host progression: each
// host injects its messages back to back, starting the next as soon as
// the previous one has fully left for the wire (the paper's Section II
// semantics).
func (nw *Network) Run(msgs []Message) (Stats, error) {
	if nw.cfg.shardCount() > 1 {
		return nw.runShardedAsync(msgs, nil)
	}
	nw.reset()
	if err := nw.load(msgs); err != nil {
		return Stats{}, nw.flushed(err)
	}
	return nw.finish()
}

// RunStages simulates synchronized stage progression: a barrier separates
// stages, so a stage's cost is set by its most contended link.
func (nw *Network) RunStages(stages [][]Message) (Stats, error) {
	return nw.runStages(stages, 0, 0)
}

// RunStagesJitter is RunStages with simulated OS jitter: each host's
// injection within a stage is delayed by an independent uniform draw
// from [0, jitter] — the skew the paper's Section VII attributes to OS
// noise and proposes clock-synchronization protocols against.
func (nw *Network) RunStagesJitter(stages [][]Message, jitter des.Time, seed int64) (Stats, error) {
	if jitter < 0 {
		return Stats{}, fmt.Errorf("netsim: negative jitter")
	}
	return nw.runStages(stages, jitter, seed)
}

func (nw *Network) runStages(stages [][]Message, jitter des.Time, seed int64) (Stats, error) {
	if nw.cfg.shardCount() > 1 {
		return nw.runShardedStages(stages, jitter, seed)
	}
	nw.reset()
	rng := rand.New(rand.NewSource(seed))
	var durs []des.Time
	var last des.Time
	for i, st := range stages {
		if err := nw.load(st); err != nil {
			return Stats{}, nw.flushed(err)
		}
		if jitter > 0 {
			nw.applyJitter(st, jitter, rng)
		}
		for j := range nw.hosts {
			nw.kickHost(&nw.hosts[j])
		}
		nw.startSamplers()
		if !nw.drain() {
			return Stats{}, nw.flushed(fmt.Errorf("netsim: stage %d exceeded %d events", i, nw.cfg.MaxEvents))
		}
		if nw.err != nil {
			return Stats{}, nw.flushed(nw.err)
		}
		if nw.remaining != 0 {
			return Stats{}, nw.flushed(fmt.Errorf("netsim: stage %d deadlocked with %d messages undelivered", i, nw.remaining))
		}
		nw.syncElidedClock()
		nw.obsFinalSample()
		durs = append(durs, nw.sched.Now()-last)
		nw.obsStage(i, len(st), last, nw.sched.Now())
		last = nw.sched.Now()
	}
	st := nw.collect()
	st.StageDurations = durs
	return st, nw.flushed(nil)
}

// applyJitter draws one skew per source host of the stage and delays all
// of its not-yet-injected messages by it.
func (nw *Network) applyJitter(st []Message, jitter des.Time, rng *rand.Rand) {
	start := nw.sched.Now()
	skew := make(map[int]des.Time)
	for _, m := range st {
		if _, ok := skew[m.Src]; !ok {
			skew[m.Src] = des.Time(rng.Int63n(int64(jitter) + 1))
		}
	}
	for src, d := range skew {
		h := &nw.hosts[src]
		for _, id := range h.queue.items[h.nextIn:] {
			nw.msgs[id].notBefore = start + d
		}
	}
}

// RunDependent simulates true collective dependency semantics: a host
// may inject its stage-(s+1) messages only after all of its stage-s
// sends have fully left the NIC and all of its stage-s receives have
// arrived. This is how an MPI rank actually progresses through a
// recursive-doubling or shift schedule — stricter than async per-host
// progression, looser than a global barrier.
func (nw *Network) RunDependent(stages [][]Message) (Stats, error) {
	if nw.cfg.shardCount() > 1 {
		return nw.runShardedAsync(nil, stages)
	}
	nw.reset()
	if err := nw.loadDependent(stages); err != nil {
		return Stats{}, nw.flushed(err)
	}
	return nw.finish()
}

// loadDependent loads a staged schedule with dependency bookkeeping.
func (nw *Network) loadDependent(stages [][]Message) error {
	// Dependency progress is checked at every delivery, so deliveries
	// must run as real events in timestamp order.
	nw.eager = false
	nStages := len(stages)
	for i := range nw.hosts {
		h := &nw.hosts[i]
		h.dependent = true
		h.sendLeft = resizeInt32(h.sendLeft, nStages)
		h.recvLeft = resizeInt32(h.recvLeft, nStages)
	}
	prevLen := make([]int, len(nw.hosts))
	for sIdx, st := range stages {
		for i := range nw.hosts {
			prevLen[i] = len(nw.hosts[i].queue.items)
		}
		if err := nw.load(st); err != nil {
			return err
		}
		for i := range nw.hosts {
			h := &nw.hosts[i]
			for _, id := range h.queue.items[prevLen[i]:] {
				m := &nw.msgs[id]
				m.stage = int32(sIdx)
				h.sendLeft[sIdx]++
				nw.hosts[m.Dst].recvLeft[sIdx]++
			}
		}
	}
	return nil
}

// resizeInt32 returns a zeroed slice of length n, reusing capacity.
func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// finish drives an async run to completion.
func (nw *Network) finish() (Stats, error) {
	for j := range nw.hosts {
		nw.kickHost(&nw.hosts[j])
	}
	nw.startSamplers()
	if !nw.drain() {
		return Stats{}, nw.flushed(fmt.Errorf("netsim: exceeded %d events", nw.cfg.MaxEvents))
	}
	if nw.err != nil {
		return Stats{}, nw.flushed(nw.err)
	}
	if nw.remaining != 0 {
		return Stats{}, nw.flushed(fmt.Errorf("netsim: deadlock with %d messages undelivered", nw.remaining))
	}
	nw.syncElidedClock()
	nw.obsFinalSample()
	return nw.collect(), nw.flushed(nil)
}

// flushed flushes the buffered flow log and folds a flush failure into
// the run's error. Every public run entry point returns through it.
func (nw *Network) flushed(err error) error {
	if nw.flow != nil {
		if ferr := nw.flow.Flush(); err == nil && ferr != nil {
			err = fmt.Errorf("netsim: flushing flow log: %w", ferr)
		}
	}
	return err
}

// syncElidedClock advances the clock to the last eager delivery, the
// instant the drained queue's final event would have carried without
// elision.
func (nw *Network) syncElidedClock() {
	if nw.endAt > nw.sched.Now() {
		nw.sched.AdvanceTo(nw.endAt)
	}
}

func (nw *Network) collect() Stats {
	s := nw.stats
	s.Duration = nw.sched.Now()
	s.Events = nw.sched.Executed() + nw.elided
	if s.MessagesDelivered == 0 {
		s.LatencyMin = 0
	}
	s.LinkBusy = make([]des.Time, len(nw.channels))
	for i := range nw.channels {
		s.LinkBusy[i] = nw.channels[i].busy
	}
	sort.Slice(s.Latencies, func(i, j int) bool { return s.Latencies[i] < s.Latencies[j] })
	s.KeptLatencies = nw.cfg.KeepLatencies
	if nw.sh != nil {
		s.Shards = nw.sh.telemetry()
	} else {
		s.Shards = []ShardStats{{
			Events:          nw.sched.Executed() + nw.elided,
			MaxPending:      nw.sched.MaxPending(),
			BusyNS:          nw.busyNS,
			CalRebases:      nw.sched.Rebases(),
			CalOverflowPeak: nw.sched.OverflowHighWater(),
			CalSlotsPeak:    nw.sched.OccupiedSlotsHighWater(),
		}}
		if p := nw.cfg.Progress; p != nil {
			p.publish(s.Duration, int64(s.Events), s.MessagesDelivered)
		}
	}
	nw.obsCollect(&s)
	return s
}

// serTime returns the wire occupancy of size bytes at rate.
func serTime(size int64, rate float64) des.Time {
	return des.Time(float64(size) * float64(des.Second) / rate)
}

// kickHost tries to inject the source host's next packet.
func (nw *Network) kickHost(h *hostState) {
	ch := &nw.channels[h.up]
	now := nw.sched.Now()
	if ch.lastBit > now || ch.credits <= 0 {
		if nw.ob != nil && ch.credits <= 0 && h.nextIn < len(h.queue.items) {
			nw.obsHostStall(h, now)
		}
		return // retried on channel-free / credit-return events
	}
	if h.nextIn >= len(h.queue.items) {
		return
	}
	m := &nw.msgs[h.queue.items[h.nextIn]]
	if h.dependent && m.stage > h.readyStage {
		return // unblocked by advanceReady when dependencies land
	}
	if m.notBefore > now {
		if !m.timerSet {
			m.timerSet = true
			nw.sched.AtEvent(m.notBefore, evKick, h.id, 0, 0)
		}
		return
	}
	if !m.started {
		m.started = true
		m.startedAt = now
	}
	size := int64(nw.cfg.MTU)
	if rem := m.Bytes - int64(m.sentPkts)*int64(nw.cfg.MTU); rem < size {
		size = rem
	}
	pid := nw.allocPkt()
	p := &nw.pkts[pid]
	p.msg = int32(h.queue.items[h.nextIn])
	p.size = int32(size)
	p.seq = m.sentPkts
	p.hop = 0
	p.tailArrive = now
	p.pathOff, p.pathLen = m.pathOff, m.pathLen
	p.perPkt = nw.cfg.PerPacketRouting
	if p.perPkt {
		nw.walkBuf = nw.walkBuf[:0]
		err := nw.rt.Walk(m.Src, m.Dst, func(l topo.LinkID, up bool) {
			nw.walkBuf = append(nw.walkBuf, chanID(l, up))
		})
		if err != nil {
			nw.err = err
			return
		}
		p.ownPath = append(p.ownPath[:0], nw.walkBuf...)
	}
	if nw.ob != nil {
		nw.obsInject(h, p, m, now)
	}
	m.sentPkts++
	if m.sentPkts == m.packets {
		// Message fully handed to the NIC queue; the *next* message
		// may start once this packet's tail leaves the wire — handled
		// in the tail-departure event below.
		h.nextIn++
	}
	nw.transmit(pid, ch, -1)
}

// transmit sends packet pid over channel ch. fromBuf is the input
// channel id whose buffer currently holds the packet (-1 when injecting
// from a host). The caller guarantees ch is free and has a credit.
func (nw *Network) transmit(pid int32, ch *channel, fromBuf int32) {
	p := &nw.pkts[pid]
	now := nw.sched.Now()
	start := now
	if ch.lastBit > start {
		panic("netsim: transmit on busy channel")
	}
	ser := ch.serMTU
	if int(p.size) != nw.cfg.MTU {
		ser = serTime(int64(p.size), ch.rate)
	}
	tail := start + ser
	// Cut-through cannot finish before the packet's bits arrived here.
	if p.tailArrive > tail {
		tail = p.tailArrive
	}
	ch.lastBit = tail
	ch.busy += tail - start
	ch.credits--
	if nw.ob != nil {
		nw.obsTransmit(p, ch, start, tail-start)
	}
	p.hop++
	headerAt := start + nw.cfg.LinkLatency
	if ch.toHost < 0 {
		headerAt += nw.cfg.SwitchLatency
		// Resolve the next hop once here so arbitration never walks the
		// message path again for this buffered packet.
		path := nw.pktPath(p)
		if int(p.hop) < len(path) {
			p.next = path[p.hop]
		} else {
			p.next = -1
		}
	} else {
		p.next = -1
	}
	tailArrive := tail + nw.cfg.LinkLatency
	if ch.toHost >= 0 && nw.eager {
		// Last hop with nobody watching: deliver inline at the arrival
		// timestamp and account for the two skipped events. Sub-tree
		// sharding keeps a host on its leaf's shard, so this touches
		// only shard-local state.
		nw.elided += 2
		nw.deliverAt(pid, tailArrive)
	} else {
		nw.schedule(ch.shardTo(nw), headerAt, evArrive, pid, ch.id, int64(tailArrive))
	}
	nw.schedule(ch.shard, tail, evDepart, pid, ch.id, int64(fromBuf))
}

// shardTo returns the shard owning the channel's receiver side.
func (ch *channel) shardTo(nw *Network) int32 {
	if nw.sh == nil {
		return 0
	}
	return nw.sh.nodeShard[ch.to]
}

// schedule routes an event to the owning shard's scheduler. In the
// sequential loop every event is local.
func (nw *Network) schedule(shard int32, at des.Time, kind uint16, a, b int32, c int64) {
	if nw.sh == nil {
		nw.sched.AtEvent(at, kind, a, b, c)
		return
	}
	nw.sh.scheduleFrom(nw, shard, at, kind, a, b, c)
}

// arriveHeader lands the packet's header at ch's receiver.
func (nw *Network) arriveHeader(pid, chID int32, tailArrive des.Time) {
	p := &nw.pkts[pid]
	ch := &nw.channels[chID]
	p.tailArrive = tailArrive
	if nw.ob != nil {
		nw.obsHeadArrives(ch, nw.sched.Now())
	}
	if ch.toHost >= 0 {
		// Delivery completes when the tail arrives.
		nw.schedule(ch.shardTo(nw), tailArrive, evDeliver, pid, chID, 0)
		return
	}
	ch.buf.push(pid)
	if nw.ob != nil {
		nw.ob.noteQueueDepth(ch)
	}
	if ch.buf.len() == 1 {
		nw.requestForward(ch)
	}
}

// requestForward queues ch's buffer head at its output channel and tries
// to arbitrate.
func (nw *Network) requestForward(in *channel) {
	if in.buf.len() == 0 || in.requested {
		return
	}
	p := &nw.pkts[in.buf.front()]
	if p.next < 0 {
		nw.err = fmt.Errorf("netsim: packet overran its path at node %d", in.to)
		return
	}
	out := &nw.channels[p.next]
	in.requested = true
	out.reqs.push(in.id)
	nw.tryForward(out)
}

// tryForward arbitrates the output channel: FIFO over requesting inputs.
func (nw *Network) tryForward(out *channel) {
	now := nw.sched.Now()
	for out.lastBit <= now && out.credits > 0 && out.reqs.len() > 0 {
		in := &nw.channels[out.reqs.pop()]
		in.requested = false
		if in.buf.len() == 0 {
			continue // stale
		}
		pid := in.buf.front()
		p := &nw.pkts[pid]
		if p.next != out.id {
			// Stale request (head changed); requeue the real target.
			nw.requestForward(in)
			continue
		}
		nw.transmit(pid, out, in.id)
	}
	if nw.ob != nil && out.reqs.len() > 0 && out.credits <= 0 && out.lastBit <= now {
		nw.obsSwitchStall(out, now)
	}
}

// departTail runs when the packet's last bit leaves channel ch's
// transmitter.
func (nw *Network) departTail(pid, chID int32, fromBuf int32) {
	p := &nw.pkts[pid]
	ch := &nw.channels[chID]
	if fromBuf < 0 {
		// Left a host NIC: sender may proceed with its next message
		// ("sent to the wire"). The host comes from the channel, not
		// the packet: an eager final-hop delivery downstream may have
		// recycled this packet id for a different flow — possibly one
		// whose source lives on another shard — by the time the tail
		// departs, so p is only trustworthy in dependent mode, which
		// disables eager delivery and never recycles in-flight ids.
		h := &nw.hosts[ch.fromHost]
		if h.dependent {
			m := &nw.msgs[p.msg]
			if p.seq == m.packets-1 {
				h.sendLeft[m.stage]--
				nw.advanceReady(h)
			}
		}
		nw.kickHost(h)
		return
	}
	// Free the input-buffer slot, return the credit upstream and let the
	// new head arbitrate.
	fb := &nw.channels[fromBuf]
	if fb.buf.len() == 0 || fb.buf.front() != pid {
		nw.err = fmt.Errorf("netsim: buffer head mismatch on channel %d", fb.id)
		return
	}
	fb.buf.pop()
	if nw.sh != nil && nw.sh.nodeShard[ch.to] != nw.shardID {
		// The arrival was handed to another shard as a copy
		// (shard.go); the local packet is done.
		nw.freePkts = append(nw.freePkts, pid)
	}
	nw.creditReturn(fb)
	nw.requestForward(fb)
	// The channel is free at this instant: re-arbitrate.
	if ch.fromHost >= 0 {
		nw.kickHost(&nw.hosts[ch.fromHost])
	} else {
		nw.tryForward(ch)
	}
}

// creditReturn hands a freed buffer slot back to channel ch's
// transmitter and wakes it. When the transmitter belongs to another
// shard, the credit travels on the reverse wire: it is delivered
// LinkLatency later as an evCreditX event — the conservative lookahead
// that makes sub-tree partitions independent within a window. On
// contention-free traffic the transmitter never exhausts its credit
// budget, so the extra latency is unobservable and sharded results stay
// bit-exact (docs/SIMULATOR.md).
func (nw *Network) creditReturn(ch *channel) {
	if nw.sh != nil && ch.shard != nw.shardID {
		nw.sh.scheduleFrom(nw, ch.shard, nw.sched.Now()+nw.cfg.LinkLatency, evCreditX, ch.id, 0, 0)
		return
	}
	ch.credits++
	nw.wakeTransmitter(ch)
}

// wakeTransmitter re-arbitrates the sender feeding channel ch after a
// credit became available.
func (nw *Network) wakeTransmitter(ch *channel) {
	if ch.fromHost >= 0 {
		nw.kickHost(&nw.hosts[ch.fromHost])
	} else {
		nw.tryForward(ch)
	}
}

// advanceReady moves the host's ready frontier over completed stages
// and re-kicks its injection queue.
func (nw *Network) advanceReady(h *hostState) {
	moved := false
	for int(h.readyStage) < len(h.sendLeft) && h.stageComplete(h.readyStage) {
		h.readyStage++
		moved = true
	}
	if moved {
		nw.kickHost(h)
	}
}

// deliverAt completes a packet at its destination host. at is the
// packet's tail-arrival instant: the current time in the event path,
// a (deterministic) future instant on the eager path.
func (nw *Network) deliverAt(pid int32, at des.Time) {
	if at > nw.endAt {
		nw.endAt = at
	}
	p := &nw.pkts[pid]
	m := &nw.msgs[p.msg]
	if p.seq != m.recvPkts {
		nw.stats.OutOfOrderPackets++
		if nw.ob != nil {
			nw.ob.outOfOrder.Inc()
		}
	}
	m.recvPkts++
	nw.stats.BytesDelivered += int64(p.size)
	if nw.ob != nil {
		nw.obsDeliverPacket(p)
	}
	if m.recvPkts == m.packets {
		nw.stats.MessagesDelivered++
		nw.remaining--
		dh := &nw.hosts[m.Dst]
		if dh.dependent {
			dh.recvLeft[m.stage]--
			nw.advanceReady(dh)
		}
		lat := at - m.startedAt
		if nw.ob != nil {
			nw.obsDeliverMessage(m, lat, at)
		}
		if nw.flow != nil {
			nw.writeFlowRecord(m, at, lat)
		} else if nw.flowSink {
			nw.flowRecs = append(nw.flowRecs, flowRec{
				src: m.Src, dst: m.Dst, bytes: m.Bytes,
				start: m.startedAt, end: at, lat: lat,
			})
		}
		if nw.cfg.KeepLatencies {
			nw.stats.Latencies = append(nw.stats.Latencies, lat)
		}
		nw.stats.LatencySum += lat
		if lat < nw.stats.LatencyMin {
			nw.stats.LatencyMin = lat
		}
		if lat > nw.stats.LatencyMax {
			nw.stats.LatencyMax = lat
		}
	}
	nw.freePkts = append(nw.freePkts, pid)
}

// writeFlowRecord appends one CSV record to the buffered flow log
// without allocating.
func (nw *Network) writeFlowRecord(m *message, end, lat des.Time) {
	b := nw.flowScratch[:0]
	b = strconv.AppendInt(b, int64(m.Src), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(m.Dst), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, m.Bytes, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(m.startedAt), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(end), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(lat), 10)
	b = append(b, '\n')
	nw.flowScratch = b
	nw.flow.Write(b)
}
