// Package netsim is a packet-level, event-driven model of an
// InfiniBand-like fat-tree network: virtual cut-through switching, credit
// based link-level flow control, input-buffered switches with
// head-of-line blocking, and PCIe-capped host injection. It reproduces
// the role of the paper's OMNeT++ simulation platform (Section II),
// calibrated to the same nominal rates: QDR links at 4000 MB/s and PCIe
// Gen2 8x hosts at 3250 MB/s.
//
// Traffic follows the deterministic forwarding tables computed by the
// route package, so contention (or its absence) is exactly the phenomenon
// the HSD model predicts — but here it plays out in time, producing
// effective bandwidth and latency numbers.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"fattree/internal/des"
	"fattree/internal/obs"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// FlowLogSchema is the version stamp written as a leading "# ..."
// comment line of every flow-completion CSV, so downstream tooling can
// detect the format. Bump the /vN suffix on incompatible changes.
const FlowLogSchema = "fattree-flowlog/v1"

// Config calibrates the simulator.
type Config struct {
	// LinkBandwidth is the wire rate in bytes/second (QDR: 4000 MB/s).
	LinkBandwidth float64
	// HostBandwidth caps host injection in bytes/second (PCIe Gen2 8x:
	// 3250 MB/s).
	HostBandwidth float64
	// LinkLatency is the propagation + SerDes delay per hop.
	LinkLatency des.Time
	// SwitchLatency is the per-switch processing (cut-through) delay.
	SwitchLatency des.Time
	// MTU is the packet payload size in bytes (IB: 2048).
	MTU int
	// BufferPackets is the number of MTU-sized input-buffer slots per
	// switch port — the credit budget of virtual cut-through.
	BufferPackets int
	// MaxEvents aborts runaway simulations (0 = unbounded).
	MaxEvents uint64
	// PerPacketRouting re-asks the router for a path for every packet
	// instead of once per message — how an adaptive fabric behaves.
	// With a randomized router this lets packets overtake each other;
	// Stats.OutOfOrderPackets counts the damage.
	PerPacketRouting bool
	// KeepLatencies retains every message latency so Stats.Percentile
	// works; off by default to keep big runs lean.
	KeepLatencies bool
	// FlowLog, when non-nil, receives the flow-completion CSV: a
	// "# fattree-flowlog/v1" schema stamp and a header line (written
	// once per Network) followed by one record per completed message —
	// src,dst,bytes,start_ps,end_ps,latency_ps. docs/SIMULATOR.md
	// documents the schema. Useful for post-processing runs with
	// external tooling.
	FlowLog io.Writer
	// Metrics, when non-nil, receives the simulator's counters,
	// gauges and histograms (metric names in docs/OBSERVABILITY.md).
	Metrics *obs.Registry
	// Probes, when non-nil, samples per-link utilization, input-buffer
	// occupancy, credit stalls and event-queue depth at the sampler's
	// interval of simulated time, as JSONL. Probe ticks are scheduler
	// events, so Stats.Events grows slightly when enabled; message
	// timings and all other Stats fields are unaffected.
	Probes *obs.Sampler
	// Trace, when non-nil, records message/packet lifecycle events
	// (inject, head-arrives, blocked-on-credit, deliver) and per-stage
	// phase markers in Chrome trace-event form — open the file in
	// Perfetto or chrome://tracing.
	Trace *obs.Tracer
	// TraceLabel names the collective-phase lane of the trace;
	// mpi.Job.SimulateMode sets it to the sequence name when empty.
	TraceLabel string
}

// DefaultConfig returns the paper's calibration.
func DefaultConfig() Config {
	return Config{
		LinkBandwidth: 4000e6,
		HostBandwidth: 3250e6,
		LinkLatency:   100 * des.Nanosecond,
		SwitchLatency: 100 * des.Nanosecond,
		MTU:           2048,
		BufferPackets: 8,
	}
}

func (c Config) validate() error {
	if c.LinkBandwidth <= 0 || c.HostBandwidth <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth")
	}
	if c.MTU < 1 {
		return fmt.Errorf("netsim: MTU must be at least 1 byte")
	}
	if c.BufferPackets < 1 {
		return fmt.Errorf("netsim: need at least one buffer slot per port")
	}
	if c.LinkLatency < 0 || c.SwitchLatency < 0 {
		return fmt.Errorf("netsim: negative latency")
	}
	return nil
}

// Message is one MPI-level send.
type Message struct {
	Src, Dst int
	Bytes    int64
}

// Stats summarizes a run.
type Stats struct {
	// Duration is the simulated makespan.
	Duration des.Time
	// BytesDelivered counts payload bytes that reached their
	// destination hosts.
	BytesDelivered int64
	// MessagesDelivered counts completed messages.
	MessagesDelivered int64
	// LatencySum/Min/Max aggregate message latencies (injection start
	// of the first packet to tail arrival of the last).
	LatencySum, LatencyMin, LatencyMax des.Time
	// Events is the number of simulator events executed.
	Events uint64
	// StageDurations holds the per-stage makespans in barrier mode.
	StageDurations []des.Time
	// LinkBusy is the cumulative transmit-busy time per directed
	// channel (2 per cable: up = 2*link, down = 2*link+1).
	LinkBusy []des.Time
	// OutOfOrderPackets counts packet arrivals whose sequence number
	// did not match the in-order expectation at the destination.
	OutOfOrderPackets int64
	// Latencies holds every message latency, ascending, when
	// Config.KeepLatencies is set.
	Latencies []des.Time
	// KeptLatencies records whether the run retained per-message
	// latencies (Config.KeepLatencies), so Percentile can distinguish
	// "retention was off" from "nothing was delivered".
	KeptLatencies bool
}

// ErrLatenciesNotKept is returned by Stats.Percentile when the run did
// not retain per-message latencies.
var ErrLatenciesNotKept = errors.New(
	"netsim: latencies were not retained; set Config.KeepLatencies before the run to use Stats.Percentile")

// Percentile returns the p-th (0..100) latency percentile; requires
// Config.KeepLatencies.
func (s Stats) Percentile(p float64) (des.Time, error) {
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("netsim: percentile %v out of range [0,100]", p)
	}
	if len(s.Latencies) == 0 {
		if !s.KeptLatencies {
			return 0, ErrLatenciesNotKept
		}
		return 0, fmt.Errorf("netsim: no messages were delivered, so no latencies to rank")
	}
	idx := int(p / 100 * float64(len(s.Latencies)-1))
	return s.Latencies[idx], nil
}

// EffectiveBandwidth returns aggregate delivered bytes per second.
func (s Stats) EffectiveBandwidth() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.BytesDelivered) / (float64(s.Duration) / float64(des.Second))
}

// MeanLatency returns the average message latency.
func (s Stats) MeanLatency() des.Time {
	if s.MessagesDelivered == 0 {
		return 0
	}
	return s.LatencySum / des.Time(s.MessagesDelivered)
}

// MaxLinkUtilization returns the busiest directed channel's busy
// fraction of the makespan — 1.0 means some wire never went idle (a
// saturated hot spot).
func (s Stats) MaxLinkUtilization() float64 {
	if s.Duration <= 0 {
		return 0
	}
	var max des.Time
	for _, b := range s.LinkBusy {
		if b > max {
			max = b
		}
	}
	return float64(max) / float64(s.Duration)
}

// SaturatedLinks counts directed channels busier than the threshold
// fraction of the makespan.
func (s Stats) SaturatedLinks(threshold float64) int {
	if s.Duration <= 0 {
		return 0
	}
	n := 0
	for _, b := range s.LinkBusy {
		if float64(b)/float64(s.Duration) >= threshold {
			n++
		}
	}
	return n
}

// channel is one direction of a cable: a transmitter plus the receiver's
// input buffer.
type channel struct {
	id       int
	from, to topo.NodeID
	rate     float64  // transmitter bytes/second
	lastBit  des.Time // busy until (tail departure of current packet)
	busy     des.Time // cumulative transmit occupancy

	// Receiver input buffer (virtual cut-through credits).
	credits int
	buf     []*packet // FIFO; buf[0] is at the switch crossbar head

	// Output arbitration at the transmitter (switch side): input
	// channels whose head packet wants this channel, FIFO.
	reqs []*channel
	// requested marks that this channel's buffer head is already queued
	// at its output channel (avoid duplicate requests).
	requested bool
}

// packet is one MTU-or-less unit of a message in flight.
type packet struct {
	msg  *message
	size int64
	seq  int     // 0-based position within the message
	path []int32 // channel ids host->...->host
	hop  int     // index of the channel the packet traverses next
	// tailArrive is when the packet's last bit reaches the node it is
	// currently buffered at (forwarding cannot complete earlier).
	tailArrive des.Time
}

// message tracks send/receive progress of one Message.
type message struct {
	Message
	path      []int32
	packets   int
	sentPkts  int
	recvPkts  int
	startedAt des.Time
	started   bool
	host      *hostState // sender
	// stage tags the collective stage in dependent mode (-1 otherwise).
	stage int
	// notBefore delays injection (simulated OS jitter / skew); zero
	// means immediately eligible.
	notBefore des.Time
	timerSet  bool
}

// hostState is the injection queue of one end-port.
type hostState struct {
	id     int
	up     *channel // host -> leaf
	queue  []*message
	nextIn int // next message to inject

	// Dependent-mode bookkeeping: per stage, how many of this host's
	// sends have not yet fully left the NIC and how many expected
	// receives have not yet arrived. readyStage is the first stage the
	// host may inject into (all earlier stages complete).
	sendLeft, recvLeft []int
	readyStage         int
	dependent          bool
}

// stageComplete reports whether the host finished stage s.
func (h *hostState) stageComplete(s int) bool {
	return h.sendLeft[s] == 0 && h.recvLeft[s] == 0
}

// Network is a simulator instance bound to a topology and routing.
type Network struct {
	t   *topo.Topology
	rt  route.Router
	cfg Config

	sched    *des.Scheduler
	channels []*channel // 2 per link: up = 2*link, down = 2*link+1
	hosts    []*hostState

	stats     Stats
	remaining int // undelivered messages
	err       error

	// Observability (nil when disabled; see obs.go).
	ob            *simObs
	traceMetaDone bool
	flowHeader    bool
}

// New creates a simulator for the topology/routing pair.
func New(rt route.Router, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nw := &Network{t: rt.Topology(), rt: rt, cfg: cfg}
	return nw, nil
}

// reset rebuilds the dynamic state for a fresh run.
func (nw *Network) reset() {
	t := nw.t
	nw.sched = des.NewScheduler()
	nw.stats = Stats{LatencyMin: 1 << 62}
	nw.err = nil
	nw.remaining = 0
	nw.channels = make([]*channel, 2*len(t.Links))
	for i := range t.Links {
		lk := &t.Links[i]
		lower := t.Ports[lk.Lower].Node
		upper := t.Ports[lk.Upper].Node
		up := &channel{id: 2 * i, from: lower, to: upper, rate: nw.cfg.LinkBandwidth, credits: nw.cfg.BufferPackets}
		down := &channel{id: 2*i + 1, from: upper, to: lower, rate: nw.cfg.LinkBandwidth, credits: nw.cfg.BufferPackets}
		if t.Node(lower).Kind == topo.Host {
			// Host injection is PCIe capped; host reception is an
			// effectively infinite sink.
			up.rate = nw.cfg.HostBandwidth
			down.credits = 1 << 30
		}
		nw.channels[up.id] = up
		nw.channels[down.id] = down
	}
	nw.hosts = make([]*hostState, t.NumHosts())
	for j := 0; j < t.NumHosts(); j++ {
		h := t.Host(j)
		upPort := t.Ports[h.Up[0]]
		upCh := nw.channels[2*int(upPort.Link)]
		nw.hosts[j] = &hostState{id: j, up: upCh}
	}
	nw.ob = nw.newSimObs()
	if nw.cfg.FlowLog != nil && !nw.flowHeader {
		nw.flowHeader = true
		fmt.Fprintln(nw.cfg.FlowLog, "# "+FlowLogSchema)
		fmt.Fprintln(nw.cfg.FlowLog, "src,dst,bytes,start_ps,end_ps,latency_ps")
	}
}

// chanID maps a route hop to a channel index.
func chanID(link topo.LinkID, up bool) int32 {
	if up {
		return int32(2 * link)
	}
	return int32(2*link + 1)
}

// pathOf computes the channel path for a src->dst flow.
func (nw *Network) pathOf(src, dst int) ([]int32, error) {
	var path []int32
	err := nw.rt.Walk(src, dst, func(l topo.LinkID, up bool) {
		path = append(path, chanID(l, up))
	})
	return path, err
}

// load enqueues messages on their source hosts (keeping input order per
// host).
func (nw *Network) load(msgs []Message) error {
	for _, m := range msgs {
		if m.Src == m.Dst {
			return fmt.Errorf("netsim: self message at host %d", m.Src)
		}
		if m.Src < 0 || m.Src >= len(nw.hosts) || m.Dst < 0 || m.Dst >= len(nw.hosts) {
			return fmt.Errorf("netsim: message %d->%d out of range", m.Src, m.Dst)
		}
		if m.Bytes < 1 {
			return fmt.Errorf("netsim: message %d->%d has %d bytes", m.Src, m.Dst, m.Bytes)
		}
		var path []int32
		if !nw.cfg.PerPacketRouting {
			var err error
			path, err = nw.pathOf(m.Src, m.Dst)
			if err != nil {
				return err
			}
		}
		pkts := int((m.Bytes + int64(nw.cfg.MTU) - 1) / int64(nw.cfg.MTU))
		ms := &message{Message: m, path: path, packets: pkts, host: nw.hosts[m.Src], stage: -1}
		nw.hosts[m.Src].queue = append(nw.hosts[m.Src].queue, ms)
		nw.remaining++
	}
	return nil
}

// Run simulates all messages with asynchronous per-host progression: each
// host injects its messages back to back, starting the next as soon as
// the previous one has fully left for the wire (the paper's Section II
// semantics).
func (nw *Network) Run(msgs []Message) (Stats, error) {
	nw.reset()
	if err := nw.load(msgs); err != nil {
		return Stats{}, err
	}
	return nw.finish()
}

// RunStages simulates synchronized stage progression: a barrier separates
// stages, so a stage's cost is set by its most contended link.
func (nw *Network) RunStages(stages [][]Message) (Stats, error) {
	return nw.runStages(stages, 0, 0)
}

// RunStagesJitter is RunStages with simulated OS jitter: each host's
// injection within a stage is delayed by an independent uniform draw
// from [0, jitter] — the skew the paper's Section VII attributes to OS
// noise and proposes clock-synchronization protocols against.
func (nw *Network) RunStagesJitter(stages [][]Message, jitter des.Time, seed int64) (Stats, error) {
	if jitter < 0 {
		return Stats{}, fmt.Errorf("netsim: negative jitter")
	}
	return nw.runStages(stages, jitter, seed)
}

func (nw *Network) runStages(stages [][]Message, jitter des.Time, seed int64) (Stats, error) {
	nw.reset()
	rng := rand.New(rand.NewSource(seed))
	var durs []des.Time
	var last des.Time
	for i, st := range stages {
		if err := nw.load(st); err != nil {
			return Stats{}, err
		}
		if jitter > 0 {
			// One skew draw per host per stage, applied to all its
			// messages of this stage.
			start := nw.sched.Now()
			skew := make(map[int]des.Time)
			for _, m := range st {
				if _, ok := skew[m.Src]; !ok {
					skew[m.Src] = des.Time(rng.Int63n(int64(jitter) + 1))
				}
			}
			for src, d := range skew {
				h := nw.hosts[src]
				for _, ms := range h.queue[h.nextIn:] {
					ms.notBefore = start + d
				}
			}
		}
		for j := range nw.hosts {
			nw.kickHost(nw.hosts[j])
		}
		nw.startProbes()
		if !nw.sched.Run(nw.cfg.MaxEvents) {
			return Stats{}, fmt.Errorf("netsim: stage %d exceeded %d events", i, nw.cfg.MaxEvents)
		}
		if nw.err != nil {
			return Stats{}, nw.err
		}
		if nw.remaining != 0 {
			return Stats{}, fmt.Errorf("netsim: stage %d deadlocked with %d messages undelivered", i, nw.remaining)
		}
		nw.obsFinalSample()
		durs = append(durs, nw.sched.Now()-last)
		nw.obsStage(i, len(st), last, nw.sched.Now())
		last = nw.sched.Now()
	}
	st := nw.collect()
	st.StageDurations = durs
	return st, nil
}

// RunDependent simulates true collective dependency semantics: a host
// may inject its stage-(s+1) messages only after all of its stage-s
// sends have fully left the NIC and all of its stage-s receives have
// arrived. This is how an MPI rank actually progresses through a
// recursive-doubling or shift schedule — stricter than async per-host
// progression, looser than a global barrier.
func (nw *Network) RunDependent(stages [][]Message) (Stats, error) {
	nw.reset()
	nStages := len(stages)
	for i := range nw.hosts {
		h := nw.hosts[i]
		h.dependent = true
		h.sendLeft = make([]int, nStages)
		h.recvLeft = make([]int, nStages)
	}
	prevLen := make([]int, len(nw.hosts))
	for sIdx, st := range stages {
		for i, h := range nw.hosts {
			prevLen[i] = len(h.queue)
		}
		if err := nw.load(st); err != nil {
			return Stats{}, err
		}
		for i, h := range nw.hosts {
			for _, m := range h.queue[prevLen[i]:] {
				m.stage = sIdx
				h.sendLeft[sIdx]++
				nw.hosts[m.Dst].recvLeft[sIdx]++
			}
		}
	}
	return nw.finish()
}

// finish drives an async run to completion.
func (nw *Network) finish() (Stats, error) {
	for j := range nw.hosts {
		nw.kickHost(nw.hosts[j])
	}
	nw.startProbes()
	if !nw.sched.Run(nw.cfg.MaxEvents) {
		return Stats{}, fmt.Errorf("netsim: exceeded %d events", nw.cfg.MaxEvents)
	}
	if nw.err != nil {
		return Stats{}, nw.err
	}
	if nw.remaining != 0 {
		return Stats{}, fmt.Errorf("netsim: deadlock with %d messages undelivered", nw.remaining)
	}
	nw.obsFinalSample()
	return nw.collect(), nil
}

func (nw *Network) collect() Stats {
	s := nw.stats
	s.Duration = nw.sched.Now()
	s.Events = nw.sched.Executed()
	if s.MessagesDelivered == 0 {
		s.LatencyMin = 0
	}
	s.LinkBusy = make([]des.Time, len(nw.channels))
	for i, ch := range nw.channels {
		s.LinkBusy[i] = ch.busy
	}
	sort.Slice(s.Latencies, func(i, j int) bool { return s.Latencies[i] < s.Latencies[j] })
	s.KeptLatencies = nw.cfg.KeepLatencies
	nw.obsCollect(&s)
	return s
}

// serTime returns the wire occupancy of size bytes at rate.
func serTime(size int64, rate float64) des.Time {
	return des.Time(float64(size) * float64(des.Second) / rate)
}

// kickHost tries to inject the source host's next packet.
func (nw *Network) kickHost(h *hostState) {
	ch := h.up
	now := nw.sched.Now()
	if ch.lastBit > now || ch.credits <= 0 {
		if nw.ob != nil && ch.credits <= 0 && h.nextIn < len(h.queue) {
			nw.obsHostStall(h, now)
		}
		return // retried on channel-free / credit-return events
	}
	if h.nextIn >= len(h.queue) {
		return
	}
	m := h.queue[h.nextIn]
	if h.dependent && m.stage > h.readyStage {
		return // unblocked by advanceReady when dependencies land
	}
	if m.notBefore > now {
		if !m.timerSet {
			m.timerSet = true
			nw.sched.At(m.notBefore, func() { nw.kickHost(h) })
		}
		return
	}
	if !m.started {
		m.started = true
		m.startedAt = now
	}
	size := int64(nw.cfg.MTU)
	if rem := m.Bytes - int64(m.sentPkts)*int64(nw.cfg.MTU); rem < size {
		size = rem
	}
	path := m.path
	if nw.cfg.PerPacketRouting {
		var err error
		path, err = nw.pathOf(m.Src, m.Dst)
		if err != nil {
			nw.err = err
			return
		}
	}
	p := &packet{msg: m, size: size, seq: m.sentPkts, path: path, tailArrive: now}
	if nw.ob != nil {
		nw.obsInject(h, p, now)
	}
	m.sentPkts++
	if m.sentPkts == m.packets {
		// Message fully handed to the NIC queue; the *next* message
		// may start once this packet's tail leaves the wire — handled
		// in the tail-departure event below.
		h.nextIn++
	}
	nw.transmit(p, ch, nil)
}

// transmit sends packet p over channel ch. fromBuf is the input channel
// whose buffer currently holds p (nil when injecting from a host).
// The caller guarantees ch is free and has a credit.
func (nw *Network) transmit(p *packet, ch *channel, fromBuf *channel) {
	now := nw.sched.Now()
	start := now
	if ch.lastBit > start {
		panic("netsim: transmit on busy channel")
	}
	ser := serTime(p.size, ch.rate)
	tail := start + ser
	// Cut-through cannot finish before the packet's bits arrived here.
	if p.tailArrive > tail {
		tail = p.tailArrive
	}
	ch.lastBit = tail
	ch.busy += tail - start
	ch.credits--
	if nw.ob != nil {
		nw.obsTransmit(p, ch, start, tail-start)
	}
	p.hop++
	headerAt := start + nw.cfg.LinkLatency
	if nw.t.Node(ch.to).Kind == topo.Switch {
		headerAt += nw.cfg.SwitchLatency
	}
	tailArrive := tail + nw.cfg.LinkLatency
	nw.sched.At(headerAt, func() { nw.arriveHeader(p, ch, tailArrive) })
	nw.sched.At(tail, func() { nw.departTail(p, ch, fromBuf) })
}

// arriveHeader lands the packet's header at ch's receiver.
func (nw *Network) arriveHeader(p *packet, ch *channel, tailArrive des.Time) {
	p.tailArrive = tailArrive
	if nw.ob != nil {
		nw.obsHeadArrives(ch, nw.sched.Now())
	}
	to := nw.t.Node(ch.to)
	if to.Kind == topo.Host {
		// Delivery completes when the tail arrives.
		nw.sched.At(tailArrive, func() { nw.deliver(p, ch) })
		return
	}
	ch.buf = append(ch.buf, p)
	if len(ch.buf) == 1 {
		nw.requestForward(ch)
	}
}

// requestForward queues ch's buffer head at its output channel and tries
// to arbitrate.
func (nw *Network) requestForward(in *channel) {
	if len(in.buf) == 0 || in.requested {
		return
	}
	p := in.buf[0]
	if p.hop >= len(p.path) {
		nw.err = fmt.Errorf("netsim: packet overran its path at node %d", in.to)
		return
	}
	out := nw.channels[p.path[p.hop]]
	in.requested = true
	out.reqs = append(out.reqs, in)
	nw.tryForward(out)
}

// tryForward arbitrates the output channel: FIFO over requesting inputs.
func (nw *Network) tryForward(out *channel) {
	now := nw.sched.Now()
	for out.lastBit <= now && out.credits > 0 && len(out.reqs) > 0 {
		in := out.reqs[0]
		out.reqs = out.reqs[1:]
		in.requested = false
		if len(in.buf) == 0 {
			continue // stale
		}
		p := in.buf[0]
		if p.hop >= len(p.path) || nw.channels[p.path[p.hop]] != out {
			// Stale request (head changed); requeue the real target.
			nw.requestForward(in)
			continue
		}
		nw.transmit(p, out, in)
	}
	if nw.ob != nil && len(out.reqs) > 0 && out.credits <= 0 && out.lastBit <= now {
		nw.obsSwitchStall(out, now)
	}
}

// departTail runs when p's last bit leaves channel ch's transmitter.
func (nw *Network) departTail(p *packet, ch *channel, fromBuf *channel) {
	if fromBuf == nil {
		// Left a host NIC: sender may proceed with its next message
		// ("sent to the wire").
		m := p.msg
		if m.host.dependent && p.seq == m.packets-1 {
			m.host.sendLeft[m.stage]--
			nw.advanceReady(m.host)
		}
		nw.kickHost(m.host)
	} else {
		// Free the input-buffer slot, return the credit upstream and
		// let the new head arbitrate.
		if len(fromBuf.buf) == 0 || fromBuf.buf[0] != p {
			nw.err = fmt.Errorf("netsim: buffer head mismatch on channel %d", fromBuf.id)
			return
		}
		fromBuf.buf = fromBuf.buf[1:]
		fromBuf.credits++
		nw.creditReturn(fromBuf)
		nw.requestForward(fromBuf)
	}
	// The channel is free at this instant: re-arbitrate.
	if nw.t.Node(ch.from).Kind == topo.Host {
		nw.kickHost(nw.hosts[nw.t.Node(ch.from).Index])
	} else {
		nw.tryForward(ch)
	}
}

// creditReturn wakes the transmitter feeding channel ch.
func (nw *Network) creditReturn(ch *channel) {
	from := nw.t.Node(ch.from)
	if from.Kind == topo.Host {
		nw.kickHost(nw.hosts[from.Index])
	} else {
		nw.tryForward(ch)
	}
}

// advanceReady moves the host's ready frontier over completed stages
// and re-kicks its injection queue.
func (nw *Network) advanceReady(h *hostState) {
	moved := false
	for h.readyStage < len(h.sendLeft) && h.stageComplete(h.readyStage) {
		h.readyStage++
		moved = true
	}
	if moved {
		nw.kickHost(h)
	}
}

// deliver completes a packet at its destination host.
func (nw *Network) deliver(p *packet, ch *channel) {
	m := p.msg
	if p.seq != m.recvPkts {
		nw.stats.OutOfOrderPackets++
		if nw.ob != nil {
			nw.ob.outOfOrder.Inc()
		}
	}
	m.recvPkts++
	nw.stats.BytesDelivered += p.size
	if nw.ob != nil {
		nw.obsDeliverPacket(p)
	}
	if m.recvPkts == m.packets {
		nw.stats.MessagesDelivered++
		nw.remaining--
		if nw.hosts[m.Dst].dependent {
			dh := nw.hosts[m.Dst]
			dh.recvLeft[m.stage]--
			nw.advanceReady(dh)
		}
		lat := nw.sched.Now() - m.startedAt
		if nw.ob != nil {
			nw.obsDeliverMessage(m, lat, nw.sched.Now())
		}
		if nw.cfg.FlowLog != nil {
			fmt.Fprintf(nw.cfg.FlowLog, "%d,%d,%d,%d,%d,%d\n",
				m.Src, m.Dst, m.Bytes, m.startedAt, nw.sched.Now(), lat)
		}
		if nw.cfg.KeepLatencies {
			nw.stats.Latencies = append(nw.stats.Latencies, lat)
		}
		nw.stats.LatencySum += lat
		if lat < nw.stats.LatencyMin {
			nw.stats.LatencyMin = lat
		}
		if lat > nw.stats.LatencyMax {
			nw.stats.LatencyMax = lat
		}
	}
	_ = ch
}
