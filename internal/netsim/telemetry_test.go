package netsim

// Tests for the ISSUE-8 telemetry surface: link-level contention
// probes, per-shard DES telemetry and the progress sink. The
// contention tests pin the paper's headline property end to end: a
// contention-free Shift on the 324-node cluster never queues more
// than one packet per channel, while a mis-ordered run does.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"fattree/internal/des"
	"fattree/internal/obs"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// parseRollup scans a link-probe JSONL stream for its closing rollup
// record.
func parseRollup(t *testing.T, stream []byte) LinkRollup {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(stream))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var roll LinkRollup
	found := false
	for sc.Scan() {
		if !bytes.Contains(sc.Bytes(), []byte(`"rollup"`)) {
			continue
		}
		if err := json.Unmarshal(sc.Bytes(), &roll); err != nil {
			t.Fatalf("bad rollup line: %v", err)
		}
		found = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("link probe stream has no rollup record")
	}
	return roll
}

// runWithLinkProbes executes msgs on cluster324 with a link sampler
// attached and returns the closing rollup.
func runWithLinkProbes(t *testing.T, msgs []Message) LinkRollup {
	t.Helper()
	lft := route.DModK(topo.MustBuild(topo.Cluster324))
	var buf bytes.Buffer
	cfg := DefaultConfig()
	cfg.LinkProbes = obs.NewSampler(&buf, 5*des.Microsecond)
	nw, err := New(lft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(msgs); err != nil {
		t.Fatal(err)
	}
	if err := cfg.LinkProbes.Flush(); err != nil {
		t.Fatal(err)
	}
	// The schema header line is FileSinks' job; the raw sampler carries
	// the series and the rollup.
	if !strings.Contains(buf.String(), `"queue_depth"`) || !strings.Contains(buf.String(), `"link_util"`) {
		t.Fatal("link probe stream is missing the queue_depth/link_util series")
	}
	return parseRollup(t, buf.Bytes())
}

// TestLinkRollupContentionFree pins the ISSUE-8 acceptance criterion's
// positive half: the paper's recommended configuration (D-Mod-K +
// identity shift stage) keeps every channel queue at depth <= 1 — a
// packet transmitting with nothing blocked behind it.
func TestLinkRollupContentionFree(t *testing.T) {
	n := topo.MustBuild(topo.Cluster324).NumHosts()
	for _, s := range []int{1, 5, n / 2} {
		roll := runWithLinkProbes(t, shiftMsgs(n, s, 64<<10))
		for ch, d := range roll.MaxQueue {
			if d > 1 {
				t.Fatalf("shift %d: channel %d reached queue depth %d on a contention-free run", s, ch, d)
			}
		}
		if roll.DurationPS <= 0 {
			t.Errorf("shift %d: rollup carries no duration", s)
		}
	}
}

// TestLinkRollupMisordered pins the negative half: permuting the
// rank-to-host mapping breaks the D-Mod-K alignment, and the link
// probes name at least one channel queuing more than one packet.
func TestLinkRollupMisordered(t *testing.T) {
	n := topo.MustBuild(topo.Cluster324).NumHosts()
	perm := rand.New(rand.NewSource(7)).Perm(n)
	const s = 5
	msgs := make([]Message, 0, n)
	for i := 0; i < n; i++ {
		msgs = append(msgs, Message{Src: perm[i], Dst: perm[(i+s)%n], Bytes: 64 << 10})
	}
	roll := runWithLinkProbes(t, msgs)
	maxQ := 0
	for _, d := range roll.MaxQueue {
		if int(d) > maxQ {
			maxQ = int(d)
		}
	}
	if maxQ <= 1 {
		t.Fatalf("mis-ordered shift shows max queue depth %d, expected contention (> 1)", maxQ)
	}
}

// TestFlowLogIdenticalWithTelemetry is the seeded equivalence matrix
// of ISSUE 8: across shards={1,2,4}, attaching link probes and a
// progress sink must leave the flow log byte-identical to the bare
// run. Runs under -race in CI.
func TestFlowLogIdenticalWithTelemetry(t *testing.T) {
	lft := route.DModK(topo.MustBuild(topo.Cluster324))
	n := lft.Topology().NumHosts()
	stages := [][]Message{
		shiftMsgs(n, 1, 2*2048),
		shiftMsgs(n, n/2, 3*2048),
	}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			run := func(telemetry bool) string {
				var flow bytes.Buffer
				cfg := DefaultConfig()
				cfg.Shards = shards
				cfg.FlowLog = &flow
				if telemetry {
					cfg.LinkProbes = obs.NewSampler(&bytes.Buffer{}, 5*des.Microsecond)
					cfg.Progress = &Progress{}
				}
				nw, err := New(lft, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := nw.RunStages(stages); err != nil {
					t.Fatal(err)
				}
				return flow.String()
			}
			bare, probed := run(false), run(true)
			if bare != probed {
				t.Errorf("flow log changed when telemetry attached (%d vs %d bytes)", len(bare), len(probed))
			}
		})
	}
}

// TestShardTelemetry checks the per-shard stats surface: one entry per
// shard, plausible counters, and the imbalance summary.
func TestShardTelemetry(t *testing.T) {
	lft := route.DModK(topo.MustBuild(topo.Cluster324))
	n := lft.Topology().NumHosts()
	msgs := shiftMsgs(n, 5, 64<<10)

	cfg := DefaultConfig()
	cfg.Shards = 4
	nw, err := New(lft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("got %d shard stats, want 4", len(st.Shards))
	}
	var sumEv uint64
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Errorf("shard %d labeled %d", i, sh.Shard)
		}
		if sh.Events == 0 {
			t.Errorf("shard %d processed no events", i)
		}
		if sh.MaxPending <= 0 {
			t.Errorf("shard %d has no pending high-water", i)
		}
		if sh.BusyNS < 0 || sh.StallNS < 0 {
			t.Errorf("shard %d has negative wall-clock telemetry: busy %d stall %d", i, sh.BusyNS, sh.StallNS)
		}
		sumEv += sh.Events
	}
	if sumEv != st.Events {
		t.Errorf("shard events sum %d != total events %d", sumEv, st.Events)
	}
	if imb := st.ShardImbalance(); imb < 1 || imb > 4 {
		t.Errorf("shard imbalance %.3f outside [1,4]", imb)
	}
	if got := st.WithoutTelemetry(); got.Shards != nil {
		t.Error("WithoutTelemetry kept the shard stats")
	}

	// Sequential runs expose the same surface with a single entry whose
	// event count matches the run's.
	seq, err := New(lft, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sst, err := seq.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sst.Shards) != 1 {
		t.Fatalf("sequential run has %d shard stats, want 1", len(sst.Shards))
	}
	if sst.Shards[0].Events != sst.Events {
		t.Errorf("sequential shard events %d != stats events %d", sst.Shards[0].Events, sst.Events)
	}
	if sst.ShardImbalance() != 1 {
		t.Errorf("sequential imbalance %.3f, want 1", sst.ShardImbalance())
	}
}

// TestShardTelemetryMetrics checks the labeled per-shard gauges reach
// the registry.
func TestShardTelemetryMetrics(t *testing.T) {
	lft := route.DModK(topo.MustBuild(topo.Cluster324))
	n := lft.Topology().NumHosts()
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.Metrics = obs.NewRegistry()
	nw, err := New(lft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := nw.Run(shiftMsgs(n, 1, 16<<10))
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range st.Shards {
		name := obs.Labeled("netsim_shard_events", "shard", fmt.Sprintf("%d", i))
		if got := cfg.Metrics.Gauge(name).Value(); got != int64(sh.Events) {
			t.Errorf("%s = %d, want %d", name, got, sh.Events)
		}
	}
	if cfg.Metrics.Gauge("netsim_shard_imbalance_milli").Value() < 1000 {
		t.Error("netsim_shard_imbalance_milli below 1000 (max/mean < 1 is impossible)")
	}
}

// TestProgressSink drives a sequential and a sharded run into one
// Progress and checks the counters accumulate across runs and the
// reporter emits lines.
func TestProgressSink(t *testing.T) {
	lft := route.DModK(topo.MustBuild(topo.Cluster324))
	n := lft.Topology().NumHosts()
	msgs := shiftMsgs(n, 1, 16<<10)
	p := &Progress{SimInterval: 2 * des.Microsecond}

	cfg := DefaultConfig()
	cfg.Progress = p
	nw, err := New(lft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if s.Delivered != st.MessagesDelivered || s.Total != int64(len(msgs)) {
		t.Errorf("after run 1: snapshot %+v, want delivered %d total %d", s, st.MessagesDelivered, len(msgs))
	}
	if s.Events == 0 || s.SimTime == 0 {
		t.Errorf("after run 1: empty counters %+v", s)
	}

	// A sharded run on the same sink accumulates.
	cfg2 := DefaultConfig()
	cfg2.Progress = p
	cfg2.Shards = 2
	nw2, err := New(lft, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw2.Run(msgs); err != nil {
		t.Fatal(err)
	}
	s2 := p.Snapshot()
	if s2.Delivered != 2*int64(n) || s2.Total != 2*int64(n) {
		t.Errorf("after run 2: snapshot %+v, want delivered and total %d", s2, 2*n)
	}

	var out bytes.Buffer
	stop := p.Report(&out, time.Millisecond, "test")
	time.Sleep(20 * time.Millisecond)
	stop()
	if !strings.Contains(out.String(), "test: sim") {
		t.Errorf("reporter wrote %q, want progress lines", out.String())
	}
	if !strings.Contains(out.String(), "msgs 648/648 (100%)") {
		t.Errorf("reporter line lacks the message fraction: %q", out.String())
	}
}

// TestZeroObserverHotPathUnchanged is the deterministic half of the
// <=2% obs-overhead budget (BenchmarkNetsimObsOverhead tracks the
// precise number): with nothing attached the simulator must keep the
// nil observer, keep eager final-hop elision, and add no per-run
// allocations beyond the result bookkeeping.
func TestZeroObserverHotPathUnchanged(t *testing.T) {
	lft := route.DModK(topo.MustBuild(topo.Cluster324))
	n := lft.Topology().NumHosts()
	msgs := shiftMsgs(n, 1, 16<<10)
	nw, err := New(lft, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if nw.ob != nil {
		t.Fatal("DefaultConfig built a simObs; the zero-observer path must keep ob nil")
	}
	if _, err := nw.Run(msgs); err != nil {
		t.Fatal(err)
	}
	if !nw.eager {
		t.Fatal("DefaultConfig run disabled eager delivery; telemetry hooks must not cost the bare path")
	}
	// Steady-state allocations per run stay O(hosts), not O(events):
	// everything hot is pooled, so telemetry must not have added
	// per-event or per-packet garbage (a 324-host shift runs ~300k
	// events; the budget is two orders of magnitude under one each).
	avg := testing.AllocsPerRun(5, func() {
		if _, err := nw.Run(msgs); err != nil {
			t.Fatal(err)
		}
	})
	if limit := 2 * float64(n); avg > limit {
		t.Errorf("bare run allocates %.0f times per run, want <= %.0f", avg, limit)
	}
}
