package netsim

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fattree/internal/des"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// fig1 is the 16-host PGFT of Figure 1 / Figure 4(b).
func fig1LFT() *route.LFT {
	tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	return route.DModK(tp)
}

func TestCutThroughLatencySingleMessage(t *testing.T) {
	// With equal host/link rates, a single-MTU message experiences pure
	// cut-through latency: one serialization plus per-hop header
	// delays — not store-and-forward.
	lft := fig1LFT()
	cfg := DefaultConfig()
	cfg.HostBandwidth = cfg.LinkBandwidth
	nw, err := New(lft, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := nw.Run([]Message{{Src: 0, Dst: 15, Bytes: int64(cfg.MTU)}})
	if err != nil {
		t.Fatal(err)
	}
	links := 4 // host-leaf, leaf-spine, spine-leaf, leaf-host
	ser := serTime(int64(cfg.MTU), cfg.LinkBandwidth)
	want := des.Time(links-1)*(cfg.LinkLatency+cfg.SwitchLatency) + ser + cfg.LinkLatency
	if st.MeanLatency() != want {
		t.Errorf("latency = %d ps, want cut-through %d ps", st.MeanLatency(), want)
	}
	sf := des.Time(links) * ser // store-and-forward serialization alone
	if st.MeanLatency() >= sf {
		t.Errorf("latency %d not better than store-and-forward %d", st.MeanLatency(), sf)
	}
	if st.BytesDelivered != int64(cfg.MTU) {
		t.Errorf("delivered %d bytes, want %d", st.BytesDelivered, cfg.MTU)
	}
}

func TestSameLeafLatencyShorter(t *testing.T) {
	lft := fig1LFT()
	nw, _ := New(lft, DefaultConfig())
	far, err := nw.Run([]Message{{Src: 0, Dst: 15, Bytes: 2048}})
	if err != nil {
		t.Fatal(err)
	}
	near, err := nw.Run([]Message{{Src: 0, Dst: 1, Bytes: 2048}})
	if err != nil {
		t.Fatal(err)
	}
	if near.MeanLatency() >= far.MeanLatency() {
		t.Errorf("same-leaf latency %d not shorter than cross-spine %d", near.MeanLatency(), far.MeanLatency())
	}
}

func TestHostBandwidthCap(t *testing.T) {
	// A long single flow saturates at the PCIe rate, not the wire rate.
	lft := fig1LFT()
	cfg := DefaultConfig()
	nw, _ := New(lft, cfg)
	bytes := int64(16 << 20)
	st, err := nw.Run([]Message{{Src: 0, Dst: 15, Bytes: bytes}})
	if err != nil {
		t.Fatal(err)
	}
	bw := st.EffectiveBandwidth()
	if bw > cfg.HostBandwidth*1.001 {
		t.Errorf("bandwidth %.0f exceeds PCIe cap %.0f", bw, cfg.HostBandwidth)
	}
	if bw < cfg.HostBandwidth*0.98 {
		t.Errorf("bandwidth %.0f well under PCIe cap %.0f", bw, cfg.HostBandwidth)
	}
}

func TestPermutationFullBandwidth(t *testing.T) {
	// Contention-free shift permutation: every host sustains its full
	// injection rate simultaneously (the Section VII claim).
	lft := fig1LFT()
	cfg := DefaultConfig()
	nw, _ := New(lft, cfg)
	per := int64(4 << 20)
	var msgs []Message
	for i := 0; i < 16; i++ {
		msgs = append(msgs, Message{Src: i, Dst: (i + 4) % 16, Bytes: per})
	}
	st, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesDelivered != per*16 {
		t.Errorf("delivered %d, want %d", st.BytesDelivered, per*16)
	}
	agg := st.EffectiveBandwidth()
	ideal := cfg.HostBandwidth * 16
	if agg < ideal*0.97 {
		t.Errorf("aggregate %.0f below 97%% of ideal %.0f — contention where none expected", agg, ideal)
	}
}

func TestSharedLinkHalvesBandwidth(t *testing.T) {
	// Hosts 0 and 1 send to destinations 4 and 8: both ≡ 0 mod 4, so
	// D-Mod-K pushes both flows through leaf up-port 0 — one 4000 MB/s
	// wire carrying two 3250 MB/s flows.
	lft := fig1LFT()
	cfg := DefaultConfig()
	nw, _ := New(lft, cfg)
	per := int64(8 << 20)
	st, err := nw.Run([]Message{
		{Src: 0, Dst: 4, Bytes: per},
		{Src: 1, Dst: 8, Bytes: per},
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := st.EffectiveBandwidth()
	if agg > cfg.LinkBandwidth*1.02 {
		t.Errorf("aggregate %.0f exceeds the shared wire rate %.0f", agg, cfg.LinkBandwidth)
	}
	if agg < cfg.LinkBandwidth*0.9 {
		t.Errorf("aggregate %.0f far below the shared wire rate %.0f", agg, cfg.LinkBandwidth)
	}
}

func TestByteConservationRandomTraffic(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	cfg := DefaultConfig()
	nw, _ := New(lft, cfg)
	r := rand.New(rand.NewSource(3))
	var msgs []Message
	var total int64
	for i := 0; i < 200; i++ {
		src := r.Intn(128)
		dst := r.Intn(128)
		if dst == src {
			dst = (dst + 1) % 128
		}
		b := int64(1 + r.Intn(10000))
		msgs = append(msgs, Message{Src: src, Dst: dst, Bytes: b})
		total += b
	}
	st, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesDelivered != total {
		t.Errorf("delivered %d bytes, want %d", st.BytesDelivered, total)
	}
	if st.MessagesDelivered != 200 {
		t.Errorf("delivered %d messages, want 200", st.MessagesDelivered)
	}
}

func TestDeterministicReplay(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	nw, _ := New(lft, DefaultConfig())
	r := rand.New(rand.NewSource(4))
	var msgs []Message
	for i := 0; i < 100; i++ {
		src, dst := r.Intn(128), r.Intn(128)
		if src == dst {
			dst = (dst + 7) % 128
		}
		msgs = append(msgs, Message{Src: src, Dst: dst, Bytes: int64(1 + r.Intn(65536))})
	}
	a, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.Events != b.Events || a.LatencySum != b.LatencySum {
		t.Errorf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestRunStagesBarrier(t *testing.T) {
	lft := fig1LFT()
	nw, _ := New(lft, DefaultConfig())
	mk := func(shift int) []Message {
		var msgs []Message
		for i := 0; i < 16; i++ {
			msgs = append(msgs, Message{Src: i, Dst: (i + shift) % 16, Bytes: 65536})
		}
		return msgs
	}
	st, err := nw.RunStages([][]Message{mk(1), mk(2), mk(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.StageDurations) != 3 {
		t.Fatalf("stage durations = %d, want 3", len(st.StageDurations))
	}
	var sum des.Time
	for i, d := range st.StageDurations {
		if d <= 0 {
			t.Errorf("stage %d duration %d", i, d)
		}
		sum += d
	}
	if sum != st.Duration {
		t.Errorf("stage durations sum %d != total %d", sum, st.Duration)
	}
	if st.BytesDelivered != 3*16*65536 {
		t.Errorf("delivered %d", st.BytesDelivered)
	}
}

func TestAsyncOverlapsFasterThanSync(t *testing.T) {
	// Asynchronous progression lets stages overlap; with contention the
	// barrier version can only be slower or equal.
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	nw, _ := New(lft, DefaultConfig())
	n := 128
	mk := func(shift int) []Message {
		var msgs []Message
		for i := 0; i < n; i++ {
			msgs = append(msgs, Message{Src: i, Dst: (i + shift) % n, Bytes: 32768})
		}
		return msgs
	}
	var all []Message
	var stages [][]Message
	for s := 1; s <= 5; s++ {
		st := mk(s)
		all = append(all, st...)
		stages = append(stages, st)
	}
	// Async needs per-host ordering: group by source preserving stage
	// order — Run keeps input order per host, so interleaved input is
	// fine.
	async, err := nw.Run(all)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := nw.RunStages(stages)
	if err != nil {
		t.Fatal(err)
	}
	if async.Duration > sync.Duration {
		t.Errorf("async %d slower than barrier %d", async.Duration, sync.Duration)
	}
}

func TestSmallMessagesManyPackets(t *testing.T) {
	// A 5000-byte message is 3 packets (2048+2048+904); all must land.
	lft := fig1LFT()
	cfg := DefaultConfig()
	nw, _ := New(lft, cfg)
	st, err := nw.Run([]Message{{Src: 2, Dst: 9, Bytes: 5000}})
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesDelivered != 5000 {
		t.Errorf("delivered %d, want 5000", st.BytesDelivered)
	}
	if st.MessagesDelivered != 1 {
		t.Errorf("messages = %d, want 1", st.MessagesDelivered)
	}
}

func TestInputValidation(t *testing.T) {
	lft := fig1LFT()
	nw, _ := New(lft, DefaultConfig())
	for _, bad := range [][]Message{
		{{Src: 0, Dst: 0, Bytes: 10}},
		{{Src: -1, Dst: 1, Bytes: 10}},
		{{Src: 0, Dst: 99, Bytes: 10}},
		{{Src: 0, Dst: 1, Bytes: 0}},
	} {
		if _, err := nw.Run(bad); err == nil {
			t.Errorf("accepted %v", bad)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	lft := fig1LFT()
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(); c.LinkBandwidth = 0; return c }(),
		func() Config { c := DefaultConfig(); c.HostBandwidth = -1; return c }(),
		func() Config { c := DefaultConfig(); c.MTU = 0; return c }(),
		func() Config { c := DefaultConfig(); c.BufferPackets = 0; return c }(),
		func() Config { c := DefaultConfig(); c.LinkLatency = -1; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(lft, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestMaxEventsBound(t *testing.T) {
	lft := fig1LFT()
	cfg := DefaultConfig()
	cfg.MaxEvents = 10
	nw, _ := New(lft, cfg)
	var msgs []Message
	for i := 0; i < 16; i++ {
		msgs = append(msgs, Message{Src: i, Dst: (i + 1) % 16, Bytes: 1 << 20})
	}
	if _, err := nw.Run(msgs); err == nil {
		t.Error("event bound not enforced")
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// Three flows: A (0->4) and B (1->8) share leaf-0 up-port 0.
	// C (2->5) uses a different up-port and must be unaffected...
	// unless it queues behind them at the spine. Verify that the two
	// sharing flows each get roughly half the wire while C keeps full
	// rate.
	lft := fig1LFT()
	cfg := DefaultConfig()
	nw, _ := New(lft, cfg)
	per := int64(4 << 20)
	st, err := nw.Run([]Message{
		{Src: 0, Dst: 4, Bytes: per},
		{Src: 1, Dst: 8, Bytes: per},
		{Src: 2, Dst: 5, Bytes: per},
	})
	if err != nil {
		t.Fatal(err)
	}
	// C finishes at ~per/3250MBps; A and B at ~2*per/4000MBps. The
	// makespan is governed by the shared pair.
	wantShared := des.Time(float64(2*per) / cfg.LinkBandwidth * float64(des.Second))
	if st.Duration < wantShared*95/100 {
		t.Errorf("duration %d shorter than the shared-wire bound %d", st.Duration, wantShared)
	}
	if st.Duration > wantShared*115/100 {
		t.Errorf("duration %d much longer than the shared-wire bound %d", st.Duration, wantShared)
	}
}

func TestRunResetsBetweenCalls(t *testing.T) {
	lft := fig1LFT()
	nw, _ := New(lft, DefaultConfig())
	a, err := nw.Run([]Message{{Src: 0, Dst: 5, Bytes: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Run([]Message{{Src: 0, Dst: 5, Bytes: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.BytesDelivered != b.BytesDelivered {
		t.Errorf("state leaked between runs: %+v vs %+v", a, b)
	}
}

func TestRunStagesJitter(t *testing.T) {
	lft := fig1LFT()
	cfg := DefaultConfig()
	nw, _ := New(lft, cfg)
	mk := func() []Message {
		var msgs []Message
		for i := 0; i < 16; i++ {
			msgs = append(msgs, Message{Src: i, Dst: (i + 4) % 16, Bytes: 65536})
		}
		return msgs
	}
	base, err := nw.RunStages([][]Message{mk(), mk()})
	if err != nil {
		t.Fatal(err)
	}
	jitter := 50 * des.Microsecond
	jit, err := nw.RunStagesJitter([][]Message{mk(), mk()}, jitter, 1)
	if err != nil {
		t.Fatal(err)
	}
	if jit.Duration <= base.Duration {
		t.Errorf("jittered run %d not slower than base %d", jit.Duration, base.Duration)
	}
	// Contention-free traffic absorbs jitter additively: per stage the
	// inflation is at most the maximum skew.
	if jit.Duration > base.Duration+2*jitter+des.Microsecond {
		t.Errorf("jitter inflated %d -> %d, more than additive bound %d",
			base.Duration, jit.Duration, base.Duration+2*jitter)
	}
	if jit.BytesDelivered != base.BytesDelivered {
		t.Errorf("bytes differ: %d vs %d", jit.BytesDelivered, base.BytesDelivered)
	}
	// Deterministic per seed.
	again, err := nw.RunStagesJitter([][]Message{mk(), mk()}, jitter, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Duration != jit.Duration {
		t.Error("jitter not deterministic per seed")
	}
	if _, err := nw.RunStagesJitter(nil, -1, 1); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestLinkUtilizationAccounting(t *testing.T) {
	lft := fig1LFT()
	cfg := DefaultConfig()
	cfg.HostBandwidth = cfg.LinkBandwidth
	nw, _ := New(lft, cfg)
	st, err := nw.Run([]Message{{Src: 0, Dst: 15, Bytes: 16 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	// A single long flow keeps every link on its path nearly fully
	// busy.
	if u := st.MaxLinkUtilization(); u < 0.95 || u > 1.0 {
		t.Errorf("max link utilization = %v, want ~1", u)
	}
	// Exactly 4 directed channels are on the path (and equally busy).
	if got := st.SaturatedLinks(0.9); got != 4 {
		t.Errorf("saturated links = %d, want 4", got)
	}
	if got := st.SaturatedLinks(1.1); got != 0 {
		t.Errorf("threshold > 1 matched %d links", got)
	}
}

func TestStressTinyBuffersNoDeadlock(t *testing.T) {
	// Credit-starved fabric under heavy random load: the up*/down*
	// routing plus credit flow control must never deadlock.
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	cfg := DefaultConfig()
	cfg.BufferPackets = 1
	nw, _ := New(lft, cfg)
	r := rand.New(rand.NewSource(13))
	var msgs []Message
	var total int64
	for i := 0; i < 1000; i++ {
		src, dst := r.Intn(128), r.Intn(128)
		if src == dst {
			dst = (dst + 1) % 128
		}
		b := int64(1 + r.Intn(20000))
		msgs = append(msgs, Message{Src: src, Dst: dst, Bytes: b})
		total += b
	}
	st, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesDelivered != total {
		t.Errorf("delivered %d of %d bytes", st.BytesDelivered, total)
	}
}

func TestAdaptivePerPacketThroughSimulator(t *testing.T) {
	// Per-packet adaptive routing must still conserve bytes and deliver
	// every message, just possibly out of order.
	tp := topo.MustBuild(topo.Cluster128)
	ada := route.NewAdaptive(tp, 5)
	cfg := DefaultConfig()
	cfg.PerPacketRouting = true
	nw, err := New(ada, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []Message
	for i := 0; i < 128; i++ {
		msgs = append(msgs, Message{Src: i, Dst: (i + 64) % 128, Bytes: 64 << 10})
	}
	st, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesDelivered != 128*(64<<10) {
		t.Errorf("delivered %d bytes", st.BytesDelivered)
	}
	if st.MessagesDelivered != 128 {
		t.Errorf("delivered %d messages", st.MessagesDelivered)
	}
}

func TestDeterministicRoutingNeverReorders(t *testing.T) {
	// With single-path routing and FIFO queues, packets of a message
	// can never overtake each other, whatever the contention.
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	nw, _ := New(lft, DefaultConfig())
	r := rand.New(rand.NewSource(21))
	var msgs []Message
	for i := 0; i < 300; i++ {
		src, dst := r.Intn(128), r.Intn(128)
		if src == dst {
			dst = (dst + 3) % 128
		}
		msgs = append(msgs, Message{Src: src, Dst: dst, Bytes: int64(2048 * (1 + r.Intn(30)))})
	}
	st, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if st.OutOfOrderPackets != 0 {
		t.Errorf("deterministic routing reordered %d packets", st.OutOfOrderPackets)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	lft := fig1LFT()
	cfg := DefaultConfig()
	cfg.KeepLatencies = true
	nw, _ := New(lft, cfg)
	var msgs []Message
	for i := 0; i < 16; i++ {
		msgs = append(msgs, Message{Src: i, Dst: (i + 4) % 16, Bytes: 65536})
	}
	st, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Latencies) != 16 {
		t.Fatalf("retained %d latencies, want 16", len(st.Latencies))
	}
	p0, err := st.Percentile(0)
	if err != nil {
		t.Fatal(err)
	}
	p100, err := st.Percentile(100)
	if err != nil {
		t.Fatal(err)
	}
	if p0 != st.LatencyMin || p100 != st.LatencyMax {
		t.Errorf("percentile endpoints (%d,%d) != (min,max) (%d,%d)", p0, p100, st.LatencyMin, st.LatencyMax)
	}
	p50, err := st.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if p50 < p0 || p50 > p100 {
		t.Errorf("p50 %d outside [%d,%d]", p50, p0, p100)
	}
	if _, err := st.Percentile(101); err == nil {
		t.Error("out-of-range percentile accepted")
	}
	// Without KeepLatencies, Percentile errors.
	nw2, _ := New(lft, DefaultConfig())
	st2, err := nw2.Run(msgs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Percentile(50); err == nil {
		t.Error("percentile without retention accepted")
	}
}

func TestRunDependentOrderingConstraint(t *testing.T) {
	// Two stages: host 0 sends to 5 in stage 0 and to 9 in stage 1;
	// host 5 sends back to 0 in stage 0. Host 0 must not inject its
	// stage-1 message before receiving host 5's stage-0 message, so the
	// makespan exceeds the sum of its own send times.
	lft := fig1LFT()
	cfg := DefaultConfig()
	nw, _ := New(lft, cfg)
	stages := [][]Message{
		{{Src: 0, Dst: 5, Bytes: 2048}, {Src: 5, Dst: 0, Bytes: 1 << 20}},
		{{Src: 0, Dst: 9, Bytes: 2048}},
	}
	dep, err := nw.RunDependent(stages)
	if err != nil {
		t.Fatal(err)
	}
	// Async mode would let host 0 fire both sends back to back.
	async, err := nw.Run(append(append([]Message(nil), stages[0]...), stages[1]...))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Duration <= async.Duration {
		t.Errorf("dependent %d not slower than async %d despite the receive dependency", dep.Duration, async.Duration)
	}
	// The 1 MiB transfer gates stage 1: duration >= its serialization.
	minGate := serTime(1<<20, cfg.HostBandwidth)
	if dep.Duration < minGate {
		t.Errorf("dependent run %d shorter than the gating transfer %d", dep.Duration, minGate)
	}
	if dep.BytesDelivered != async.BytesDelivered {
		t.Errorf("delivered bytes differ: %d vs %d", dep.BytesDelivered, async.BytesDelivered)
	}
}

func TestRunDependentCollective(t *testing.T) {
	// A full recursive-doubling exchange on 16 hosts: all stages must
	// complete, and the makespan must sit between async (too loose) and
	// barrier (too strict) semantics.
	lft := fig1LFT()
	nw, _ := New(lft, DefaultConfig())
	var stages [][]Message
	for s := 0; s < 4; s++ {
		var st []Message
		for i := 0; i < 16; i++ {
			st = append(st, Message{Src: i, Dst: i ^ (1 << s), Bytes: 128 << 10})
		}
		stages = append(stages, st)
	}
	dep, err := nw.RunDependent(stages)
	if err != nil {
		t.Fatal(err)
	}
	var flat []Message
	for _, st := range stages {
		flat = append(flat, st...)
	}
	async, err := nw.Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	barrier, err := nw.RunStages(stages)
	if err != nil {
		t.Fatal(err)
	}
	if dep.MessagesDelivered != 64 {
		t.Fatalf("delivered %d messages", dep.MessagesDelivered)
	}
	if dep.Duration < async.Duration {
		t.Errorf("dependent %d faster than async %d", dep.Duration, async.Duration)
	}
	// Barrier is NOT a strict upper bound for dependent in general
	// (cross-stage overlap can collide flows), but on this
	// contention-free schedule the two should be within a small factor.
	if dep.Duration > 2*barrier.Duration {
		t.Errorf("dependent %d far beyond barrier %d on contention-free traffic", dep.Duration, barrier.Duration)
	}
}

func TestRunDependentDeadlockFreeUnderContention(t *testing.T) {
	// Dependencies + finite credits + contention must still drain.
	tp := topo.MustBuild(topo.Cluster128)
	lft := route.DModK(tp)
	cfg := DefaultConfig()
	cfg.BufferPackets = 1
	nw, _ := New(lft, cfg)
	r := rand.New(rand.NewSource(17))
	var stages [][]Message
	for s := 0; s < 5; s++ {
		perm := r.Perm(128)
		var st []Message
		for i, d := range perm {
			if i != d {
				st = append(st, Message{Src: i, Dst: d, Bytes: 16 << 10})
			}
		}
		stages = append(stages, st)
	}
	st, err := nw.RunDependent(stages)
	if err != nil {
		t.Fatal(err)
	}
	if st.MessagesDelivered == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestFlowLogFlushedOnError: an aborted run (bad message, load error)
// must still flush everything buffered in the flow-log writer — the
// schema stamp and header here, tail records in general — instead of
// dropping them silently with the early return.
func TestFlowLogFlushedOnError(t *testing.T) {
	lft := fig1LFT()
	run := func(name string, drive func(nw *Network) error) {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			var log bytes.Buffer
			cfg.FlowLog = &log
			nw, err := New(lft, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := drive(nw); err == nil {
				t.Fatal("bad message did not fail the run")
			}
			if !strings.Contains(log.String(), "# "+FlowLogSchema) {
				t.Fatalf("flow log not flushed on the error path; got %q", log.String())
			}
		})
	}
	bad := Message{Src: 2, Dst: 2, Bytes: 64} // self message: load error
	run("Run", func(nw *Network) error {
		_, err := nw.Run([]Message{{Src: 0, Dst: 5, Bytes: 64}, bad})
		return err
	})
	run("RunDependent", func(nw *Network) error {
		_, err := nw.RunDependent([][]Message{{{Src: 0, Dst: 5, Bytes: 64}}, {bad}})
		return err
	})
	run("RunStages", func(nw *Network) error {
		_, err := nw.RunStages([][]Message{{{Src: 0, Dst: 5, Bytes: 64}}, {bad}})
		return err
	})
}

func TestFlowLog(t *testing.T) {
	lft := fig1LFT()
	cfg := DefaultConfig()
	var log bytes.Buffer
	cfg.FlowLog = &log
	nw, _ := New(lft, cfg)
	st, err := nw.Run([]Message{
		{Src: 0, Dst: 5, Bytes: 4096},
		{Src: 1, Dst: 9, Bytes: 2048},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("flow log has %d lines, want schema + header + 2 records:\n%s", len(lines), log.String())
	}
	if lines[0] != "# "+FlowLogSchema {
		t.Fatalf("flow log schema stamp = %q", lines[0])
	}
	if lines[1] != "src,dst,bytes,start_ps,end_ps,latency_ps" {
		t.Fatalf("flow log header = %q", lines[1])
	}
	lines = lines[2:]
	totalLat := des.Time(0)
	for _, line := range lines {
		var src, dst int
		var bytes, start, end, lat int64
		if _, err := fmt.Sscanf(line, "%d,%d,%d,%d,%d,%d", &src, &dst, &bytes, &start, &end, &lat); err != nil {
			t.Fatalf("malformed flow record %q: %v", line, err)
		}
		if end-start != lat {
			t.Errorf("record %q: end-start != latency", line)
		}
		totalLat += des.Time(lat)
	}
	if totalLat != st.LatencySum {
		t.Errorf("flow log latencies sum %d != stats %d", totalLat, st.LatencySum)
	}
}
