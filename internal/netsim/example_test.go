package netsim_test

import (
	"fmt"

	"fattree/internal/netsim"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// Simulate a contention-free shift permutation on the Figure 1 tree.
func ExampleNetwork_Run() {
	t := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
	nw, err := netsim.New(route.DModK(t), netsim.DefaultConfig())
	if err != nil {
		panic(err)
	}
	var msgs []netsim.Message
	for i := 0; i < 16; i++ {
		msgs = append(msgs, netsim.Message{Src: i, Dst: (i + 4) % 16, Bytes: 1 << 20})
	}
	st, err := nw.Run(msgs)
	if err != nil {
		panic(err)
	}
	cfg := netsim.DefaultConfig()
	norm := st.EffectiveBandwidth() / (cfg.HostBandwidth * 16)
	fmt.Printf("messages delivered: %d\n", st.MessagesDelivered)
	fmt.Printf("normalized bandwidth >= 0.97: %v\n", norm >= 0.97)
	fmt.Printf("out-of-order packets: %d\n", st.OutOfOrderPackets)
	// Output:
	// messages delivered: 16
	// normalized bandwidth >= 0.97: true
	// out-of-order packets: 0
}
