package netsim

// Live progress reporting for long sweeps. The simulator publishes
// cumulative counters into a Progress sink — via daemon ticks on the
// sequential loop, via the coordinator at window barriers when sharded
// — and a reporter goroutine owned by the caller reads them at wall
// clock intervals. Attaching a Progress never changes simulated
// timings; like probe ticks, the sequential publish ticks are
// scheduler events, so only Stats.Events grows.

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"fattree/internal/des"
)

// Progress publishes live counters of running simulations. One
// Progress may span many runs on one Config (a sweep): Events,
// Delivered and Total accumulate across runs while SimTime restarts
// with each run. All methods are safe for one simulation goroutine
// publishing concurrently with any number of Snapshot readers.
type Progress struct {
	// SimInterval is the publish cadence in simulated time for
	// sequential runs (default 10µs). Sharded runs publish at every
	// window barrier instead.
	SimInterval des.Time

	simNow    atomic.Int64
	events    atomic.Int64
	delivered atomic.Int64
	total     atomic.Int64

	// Run baselines, touched only by the simulation goroutine: counters
	// published per run are relative, Snapshot readings cumulative.
	evBase, delBase int64
}

// ProgressSnapshot is one reading of a Progress sink.
type ProgressSnapshot struct {
	SimTime   des.Time // current run's simulated clock
	Events    int64    // events executed across all runs
	Delivered int64    // messages delivered across all runs
	Total     int64    // messages loaded across all runs
}

// Snapshot reads the counters. Fields are read individually, so a
// snapshot taken mid-publish can be one tick stale per field — fine
// for progress lines, not a synchronization primitive.
func (p *Progress) Snapshot() ProgressSnapshot {
	return ProgressSnapshot{
		SimTime:   des.Time(p.simNow.Load()),
		Events:    p.events.Load(),
		Delivered: p.delivered.Load(),
		Total:     p.total.Load(),
	}
}

func (p *Progress) interval() des.Time {
	if p.SimInterval > 0 {
		return p.SimInterval
	}
	return 10 * des.Microsecond
}

// beginRun re-baselines the per-run counters at the start of a run.
func (p *Progress) beginRun() {
	p.evBase = p.events.Load()
	p.delBase = p.delivered.Load()
	p.simNow.Store(0)
}

// addTotal counts freshly loaded messages toward the ETA denominator.
func (p *Progress) addTotal(n int64) { p.total.Add(n) }

// publish stores the current run's counters (relative to the run's
// baselines). Called only from the simulation goroutine.
func (p *Progress) publish(now des.Time, events, delivered int64) {
	p.simNow.Store(int64(now))
	p.events.Store(p.evBase + events)
	p.delivered.Store(p.delBase + delivered)
}

// Report starts a goroutine that writes one progress line to w every
// wall-clock interval (default 1s) until the returned stop function is
// called. Lines carry the simulated clock, the sim-time/wall-time
// rate, the event rate, delivered/total messages and an ETA
// extrapolated from the delivery fraction.
func (p *Progress) Report(w io.Writer, every time.Duration, label string) (stop func()) {
	if every <= 0 {
		every = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		start := time.Now()
		var prev ProgressSnapshot
		prevWall := start
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			s := p.Snapshot()
			now := time.Now()
			dw := now.Sub(prevWall).Seconds()
			var simRate, evRate float64
			if dw > 0 {
				simRate = float64(s.SimTime-prev.SimTime) / float64(des.Second) / dw
				evRate = float64(s.Events-prev.Events) / dw
			}
			line := fmt.Sprintf("%s: sim %.3f ms (%.1e x real time) | %s events (%s ev/s)",
				label, float64(s.SimTime)/float64(des.Millisecond), simRate,
				humanCount(s.Events), humanCount(int64(evRate)))
			if s.Total > 0 {
				line += fmt.Sprintf(" | msgs %d/%d (%.0f%%)",
					s.Delivered, s.Total, 100*float64(s.Delivered)/float64(s.Total))
				if s.Delivered > 0 && s.Delivered < s.Total {
					elapsed := now.Sub(start)
					eta := time.Duration(float64(elapsed) *
						float64(s.Total-s.Delivered) / float64(s.Delivered))
					line += fmt.Sprintf(" | eta %s", eta.Round(time.Second))
				}
			}
			fmt.Fprintln(w, line)
			prev, prevWall = s, now
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// humanCount renders a count with k/M/G suffixes for progress lines.
func humanCount(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// startProgress arms the sequential publish tick: a self-rescheduling
// daemon event, so it dies with the stage's regular work and never
// extends the simulation. Sharded runs publish from the coordinator at
// window barriers instead (see pumpShards).
func (nw *Network) startProgress() {
	p := nw.cfg.Progress
	if p == nil || nw.sh != nil {
		return
	}
	var tick func()
	tick = func() {
		p.publish(nw.sched.Now(), int64(nw.sched.Executed()+nw.elided), nw.stats.MessagesDelivered)
		nw.sched.AfterDaemon(p.interval(), tick)
	}
	tick()
}
