package netsim

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"fattree/internal/route"
	"fattree/internal/topo"
)

// Sharded equivalence: the conservative parallel loop must reproduce
// the sequential simulation exactly — same Stats, same flow log — for
// workloads whose transmitters never exhaust their credit budget (the
// bit-exactness precondition documented in shard.go). The matrix
// crosses topologies (paper cluster, k-ary-n-tree, seeded random
// routing) with progression semantics (async, barrier, dependent).

// flowCanon canonicalizes a flow log for comparison: the header stays
// in place, data rows are sorted. A sequential run writes records in
// delivery-event order while a sharded run merges per-shard buffers in
// (end, start, src, dst) order, so rows completing at the same instant
// may legally swap; the records themselves must match exactly.
func flowCanon(log string) string {
	lines := strings.Split(strings.TrimRight(log, "\n"), "\n")
	if len(lines) <= 2 {
		return log
	}
	sort.Strings(lines[2:])
	return strings.Join(lines, "\n")
}

// shiftMsgs builds the s-shift permutation over n hosts.
func shiftMsgs(n int, s int, bytes int64) []Message {
	msgs := make([]Message, 0, n)
	for src := 0; src < n; src++ {
		msgs = append(msgs, Message{Src: src, Dst: (src + s) % n, Bytes: bytes})
	}
	return msgs
}

// equivRun executes one workload on a fresh Network and returns its
// stats and flow log.
func equivRun(t *testing.T, rt route.Router, cfg Config, mode string, stages [][]Message) (Stats, string) {
	t.Helper()
	var flow bytes.Buffer
	cfg.FlowLog = &flow
	cfg.KeepLatencies = true
	nw, err := New(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	switch mode {
	case "async":
		var flat []Message
		for _, s := range stages {
			flat = append(flat, s...)
		}
		st, err = nw.Run(flat)
	case "barrier":
		st, err = nw.RunStages(stages)
	case "dependent":
		st, err = nw.RunDependent(stages)
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	if err != nil {
		t.Fatalf("%s shards=%d: %v", mode, cfg.Shards, err)
	}
	// Wall-clock shard telemetry legitimately differs between layouts;
	// equivalence is about simulated results.
	return st.WithoutTelemetry(), flow.String()
}

func TestShardEquivalenceMatrix(t *testing.T) {
	cases := []struct {
		name string
		rt   func() route.Router
	}{
		{"paper-cluster324", func() route.Router {
			return route.DModK(topo.MustBuild(topo.Cluster324))
		}},
		{"4-ary-2-tree", func() route.Router {
			return route.DModK(topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 4}, []int{1, 1})))
		}},
		{"rand-rlft-seed7", func() route.Router {
			tp := topo.MustBuild(topo.MustPGFT(2, []int{4, 4}, []int{1, 2}, []int{1, 2}))
			return route.MinHopRandom(tp, 7)
		}},
	}
	modes := []string{"async", "barrier", "dependent"}
	for _, tc := range cases {
		rt := tc.rt()
		n := rt.Topology().NumHosts()
		stages := [][]Message{
			shiftMsgs(n, 1, 3*2048),
			shiftMsgs(n, n/2, 2*2048+512),
		}
		cfg := DefaultConfig()
		cfg.Shards = 1
		var want = map[string]Stats{}
		var wantFlow = map[string]string{}
		for _, mode := range modes {
			want[mode], wantFlow[mode] = equivRun(t, rt, cfg, mode, stages)
		}
		for _, shards := range []int{2, 4} {
			for _, mode := range modes {
				t.Run(fmt.Sprintf("%s/%s/shards=%d", tc.name, mode, shards), func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.Shards = shards
					got, gotFlow := equivRun(t, rt, cfg, mode, stages)
					if !reflect.DeepEqual(got, want[mode]) {
						t.Errorf("stats diverge from sequential:\n got: %+v\nwant: %+v", got, want[mode])
					}
					if flowCanon(gotFlow) != flowCanon(wantFlow[mode]) {
						t.Errorf("flow log diverges from sequential:\n got:\n%s\nwant:\n%s", gotFlow, wantFlow[mode])
					}
				})
			}
		}
	}
}

// TestShardSequentialMatchesUnsharded pins Shards=1 to the Shards=0
// default path: both must take the plain sequential loop.
func TestShardSequentialMatchesUnsharded(t *testing.T) {
	rt := fig1LFT()
	n := rt.Topology().NumHosts()
	stages := [][]Message{shiftMsgs(n, 3, 4096)}
	cfg0 := DefaultConfig()
	st0, flow0 := equivRun(t, rt, cfg0, "async", stages)
	cfg1 := DefaultConfig()
	cfg1.Shards = 1
	st1, flow1 := equivRun(t, rt, cfg1, "async", stages)
	if !reflect.DeepEqual(st0, st1) || flow0 != flow1 {
		t.Errorf("Shards=1 diverges from Shards=0:\n got: %+v\nwant: %+v", st1, st0)
	}
}

// TestShardPartition checks the structural invariants of the node
// partition: every node owned, hosts colocated with their leaf, shard
// ids in range.
func TestShardPartition(t *testing.T) {
	tp := topo.MustBuild(topo.Cluster324)
	for _, shards := range []int{2, 3, 6} {
		ns := partitionNodes(tp, shards)
		if len(ns) != len(tp.Nodes) {
			t.Fatalf("shards=%d: partition covers %d nodes, want %d", shards, len(ns), len(tp.Nodes))
		}
		for id, s := range ns {
			if s < 0 || int(s) >= shards {
				t.Fatalf("shards=%d: node %d assigned to shard %d", shards, id, s)
			}
		}
		for j := 0; j < tp.NumHosts(); j++ {
			h := tp.Host(j)
			up := tp.Ports[h.Up[0]]
			leaf := tp.Ports[tp.Links[up.Link].Upper].Node
			if ns[h.ID] != ns[leaf] {
				t.Fatalf("shards=%d: host %d on shard %d, its leaf %d on shard %d",
					shards, h.ID, ns[h.ID], leaf, ns[leaf])
			}
		}
		used := map[int32]bool{}
		for _, s := range ns {
			used[s] = true
		}
		if len(used) != shards {
			t.Errorf("shards=%d: only %d shards used", shards, len(used))
		}
	}
}

// TestShardContendedConserves exercises the regime outside the
// bit-exactness precondition: incast traffic exhausts credits, so
// cross-shard credit returns (delayed by one lookahead) shape timing.
// The run must still complete, conserve bytes, and stay deterministic
// for a fixed shard count.
func TestShardContendedConserves(t *testing.T) {
	rt := fig1LFT()
	n := rt.Topology().NumHosts()
	var msgs []Message
	for src := 1; src < n; src++ {
		msgs = append(msgs, Message{Src: src, Dst: 0, Bytes: 8 * 2048})
	}
	cfg := DefaultConfig()
	cfg.Shards = 2
	nw, err := New(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n-1) * 8 * 2048; first.BytesDelivered != want {
		t.Errorf("delivered %d bytes, want %d", first.BytesDelivered, want)
	}
	second, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.WithoutTelemetry(), second.WithoutTelemetry()) {
		t.Errorf("contended sharded rerun diverges:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestShardNetworkReuse runs the same sharded workload twice on one
// Network: arenas and the shard runtime must reset cleanly between
// runs.
func TestShardNetworkReuse(t *testing.T) {
	rt := fig1LFT()
	n := rt.Topology().NumHosts()
	cfg := DefaultConfig()
	cfg.Shards = 2
	nw, err := New(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msgs := shiftMsgs(n, 5, 6144)
	first, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := nw.Run(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.WithoutTelemetry(), second.WithoutTelemetry()) {
		t.Errorf("sharded rerun diverges:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
