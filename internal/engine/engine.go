// Package engine is the pluggable routing-engine layer: a registry of
// named Builders, each of which binds a routing algorithm to a topology
// and produces forwarding tables (plus the compiled path arena and the
// fault collateral) for any fault state of that fabric. The paper's
// D-Mod-K, its ablation baselines and the source-based S-Mod-K are all
// re-registered through it, alongside two engines from the Gliksberg
// follow-up papers: node-type-based load balancing ("nodetype-lb") and
// incremental fault-resilient repair ("fault-resilient"). The fabric
// manager, the CLIs and the bake-off harness all select engines by name
// from this registry, so adding an engine is one Register call (see
// docs/ROUTING.md).
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fattree/internal/fabric"
	"fattree/internal/route"
	"fattree/internal/topo"
)

// Options tunes a Builder. The zero value is always valid.
type Options struct {
	// Seed drives randomized engines (minhop-random).
	Seed int64
	// NodeTypes assigns a node type per host index for the nodetype-lb
	// engine: destinations are spread over up ports independently within
	// each type. Nil means every host is the same type, which reduces
	// nodetype-lb to plain D-Mod-K.
	NodeTypes []int
}

// Tables is one engine's routing product for one fault state of the
// fabric. Everything is immutable once returned.
type Tables struct {
	// Router serves path walks; never nil, compiled whenever possible so
	// analysis iterates packed arenas.
	Router route.Router
	// LFT is the destination-based forwarding-table realization — what a
	// subnet manager would program into switches. Nil for engines that
	// cannot be expressed as one (s-mod-k is source-based).
	LFT *route.LFT
	// Compiled is the packed path arena over the routing, with pairs the
	// fault state leaves unservable recorded as broken.
	Compiled *route.Compiled
	// Unroutable lists hosts that lost their only uplink, ascending.
	Unroutable []int
	// BrokenPairs counts ordered pairs between routable hosts left
	// without a served minimal path.
	BrokenPairs int
}

// Routability returns the fraction of ordered src!=dst pairs the tables
// serve, in [0, 1]. Healthy fabrics report 1.
func (tb *Tables) Routability(n int) float64 {
	total := n * (n - 1)
	if total == 0 {
		return 1
	}
	return float64(total-tb.Compiled.NumBroken()) / float64(total)
}

// Engine produces tables for successive fault states of one topology.
// Implementations may cache work across calls (the fault-resilient
// engine keeps its healthy baseline); each Tables call must stand alone
// against the fault set it is given, never against a previous one.
type Engine interface {
	// Name echoes the registry name the engine was built under.
	Name() string
	// Tables computes routing tables for the given fault state. A nil
	// fault set means a healthy fabric. fs must be over the same
	// topology the engine was built for.
	Tables(fs *fabric.FaultSet) (*Tables, error)
}

// Builder binds an engine to a topology.
type Builder func(t *topo.Topology, opts Options) (Engine, error)

// Info describes a registered engine for listings and reports.
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// LFT reports whether the engine produces destination-based
	// forwarding tables programmable into InfiniBand-style hardware.
	LFT bool `json:"lft"`
	// FaultAware reports whether the engine actively reroutes around
	// dead links, rather than only refusing the pairs they break.
	FaultAware bool `json:"fault_aware"`
}

var (
	regMu    sync.RWMutex
	registry = map[string]regEntry{}
)

type regEntry struct {
	info Info
	b    Builder
}

// Register adds an engine to the registry. It panics on an empty name,
// nil builder or duplicate registration — all programming errors, caught
// at init time.
func Register(info Info, b Builder) {
	if info.Name == "" {
		panic("engine: Register with empty name")
	}
	if b == nil {
		panic(fmt.Sprintf("engine: Register(%q) with nil builder", info.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("engine: Register(%q) called twice", info.Name))
	}
	registry[info.Name] = regEntry{info: info, b: b}
}

// Build instantiates a registered engine for a topology. An unknown name
// is an error that lists every registered engine, so a typo on a -engine
// flag or an API request is self-correcting.
func Build(name string, t *topo.Topology, opts Options) (Engine, error) {
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	return e.b(t, opts)
}

// Names returns the registered engine names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Infos returns the registered engine descriptors, sorted by name.
func Infos() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Default is the engine the daemon and CLIs use when none is selected:
// the paper's D-Mod-K with RouteAround fault handling.
const Default = "dmodk"

// deadUplinkHosts returns the hosts whose single uplink is dead,
// ascending — the unroutable set every engine shares, since no routing
// choice can reach a host with no alive cable.
func deadUplinkHosts(t *topo.Topology, fs *fabric.FaultSet) []int {
	if fs == nil {
		return nil
	}
	var out []int
	for j := 0; j < t.NumHosts(); j++ {
		if !fs.Alive(t.Ports[t.Host(j).Up[0]].Link) {
			out = append(out, j)
		}
	}
	return out
}

// brokenAmongRoutable converts an arena's total broken count into the
// count excluding pairs touching unroutable hosts (those pairs are
// always broken and say nothing about the engine's repair quality).
func brokenAmongRoutable(n, numBroken int, unroutable []int) int {
	u := len(unroutable)
	b := numBroken - (2*u*(n-1) - u*(u-1))
	if b < 0 {
		b = 0
	}
	return b
}
