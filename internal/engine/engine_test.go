package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"fattree/internal/cps"
	"fattree/internal/fabric"
	"fattree/internal/hsd"
	"fattree/internal/invariant"
	"fattree/internal/order"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func build324(t *testing.T) *topo.Topology {
	t.Helper()
	tp, err := topo.Build(topo.Cluster324)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func buildSmall(t *testing.T) *topo.Topology {
	t.Helper()
	g, err := topo.RLFT2(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// realEngines is the shipped registry, spelled out so tests stay
// deterministic when a test file registers extra throwaway engines.
var realEngines = []string{"dmodk", "dmodk-naive", "fault-resilient", "minhop-random", "nodetype-lb", "smodk"}

func TestBuildUnknownListsNames(t *testing.T) {
	tp := buildSmall(t)
	_, err := Build("no-such-engine", tp, Options{})
	if err == nil {
		t.Fatal("Build accepted an unknown engine")
	}
	for _, name := range realEngines {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-engine error %q does not list %q", err, name)
		}
	}
}

func TestNamesAndInfos(t *testing.T) {
	names := Names()
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, want := range realEngines {
		if !have[want] {
			t.Errorf("Names() = %v missing %q", names, want)
		}
	}
	for _, info := range Infos() {
		if info.Name == "" || info.Description == "" {
			t.Errorf("Info %+v missing name or description", info)
		}
	}
}

// withoutThm2 filters Theorem-2 down-uniqueness out of the catalog, for
// routings that only promise it per source (S-Mod-K) or per node type
// (multi-type nodetype-lb), not globally per down port.
func withoutThm2(t *testing.T) []invariant.Check {
	t.Helper()
	var out []invariant.Check
	for _, c := range invariant.Catalog() {
		if c.Name != "route.thm2-down-unique" {
			out = append(out, c)
		}
	}
	return out
}

// TestHealthyCatalog324 runs the full invariant catalog (routing
// totality, up*/down*, minimality, Theorem 2, contention-freedom of the
// Table-2 sequences — so Shift-HSD = 1) against every shipped engine on
// the healthy paper cluster. The fault-oblivious baselines are excluded
// where they are expected to fail (minhop-random is deliberately
// contention-prone), and source-spread S-Mod-K skips the global Theorem-2
// claim it never makes.
func TestHealthyCatalog324(t *testing.T) {
	tp := build324(t)
	for _, name := range []string{"dmodk", "smodk", "nodetype-lb", "fault-resilient"} {
		t.Run(name, func(t *testing.T) {
			e, err := Build(name, tp, Options{})
			if err != nil {
				t.Fatal(err)
			}
			tb, err := e.Tables(nil)
			if err != nil {
				t.Fatal(err)
			}
			if tb.Compiled.NumBroken() != 0 || len(tb.Unroutable) != 0 || tb.BrokenPairs != 0 {
				t.Fatalf("healthy tables report damage: broken=%d unroutable=%v", tb.Compiled.NumBroken(), tb.Unroutable)
			}
			var checks []invariant.Check
			if name == "smodk" {
				checks = withoutThm2(t)
			}
			rep := invariant.Run(&invariant.Instance{Topo: tp, Router: tb.Router}, checks)
			if !rep.Pass {
				t.Fatalf("catalog failed: %v", rep.FailedNames())
			}
		})
	}
}

// TestHealthyShiftHSDOne pins the acceptance bar directly: on cluster324
// with zero faults the two new engines keep every Shift stage at HSD 1.
func TestHealthyShiftHSDOne(t *testing.T) {
	tp := build324(t)
	o := order.Topology(tp.NumHosts(), nil)
	for _, name := range []string{"nodetype-lb", "fault-resilient"} {
		e, err := Build(name, tp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Tables(nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := hsd.AnalyzeParallel(tb.Router, o, cps.Shift(tp.NumHosts()), 0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MaxHSD() != 1 {
			t.Errorf("%s: Shift max HSD = %d, want 1", name, rep.MaxHSD())
		}
	}
}

// TestNodetypeRouting checks the ranked variant: a single type collapses
// to plain D-Mod-K bit for bit, and a striped multi-type assignment
// still passes every routing invariant.
func TestNodetypeRouting(t *testing.T) {
	tp := buildSmall(t)
	e, err := Build("nodetype-lb", tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := e.Tables(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := route.DModK(tp)
	for id := range want.Out {
		for j, p := range want.Out[id] {
			if tb.LFT.Out[id][j] != p {
				t.Fatalf("single-type nodetype-lb differs from d-mod-k at node %d dst %d", id, j)
			}
		}
	}

	types := make([]int, tp.NumHosts())
	for j := range types {
		types[j] = j % 3
	}
	e, err = Build("nodetype-lb", tp, Options{NodeTypes: types})
	if err != nil {
		t.Fatal(err)
	}
	tb, err = e.Tables(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := "nodetype-lb[3 types]"; tb.Router.Label() != want {
		t.Errorf("label = %q, want %q", tb.Router.Label(), want)
	}
	// Multi-type spreading trades the global Theorem-2 uniqueness and
	// the all-types contention-freedom theorem for per-type balance, so
	// those are excluded; totality, up*/down*, minimality and the cache
	// contracts must hold.
	checks, err := invariant.Select("route.total,route.updown,route.minimal,route.alive,route.compiled-equiv,route.lenient-broken")
	if err != nil {
		t.Fatal(err)
	}
	rep := invariant.Run(&invariant.Instance{Topo: tp, Router: tb.Router}, checks)
	if !rep.Pass {
		t.Fatalf("multi-type routing checks failed: %v", rep.FailedNames())
	}
}

func TestNodetypeBadAssignment(t *testing.T) {
	tp := buildSmall(t)
	if _, err := Build("nodetype-lb", tp, Options{NodeTypes: []int{1, 2, 3}}); err == nil {
		t.Fatal("short NodeTypes accepted")
	}
}

// TestConeTablesZeroFaults: the generalized cone builder at zero faults
// reproduces the closed-form ranked tables exactly, for both the nil
// rank and a striped multi-type ranking.
func TestConeTablesZeroFaults(t *testing.T) {
	tp := buildSmall(t)
	types := make([]int, tp.NumHosts())
	for j := range types {
		types[j] = j % 3
	}
	rank3, _ := typeRanks(tp.NumHosts(), types)
	for _, tc := range []struct {
		label string
		rank  []int
	}{{"identity", nil}, {"striped-3", rank3}} {
		want, err := route.DModKRanked(tp, tc.rank, "want")
		if err != nil {
			t.Fatal(err)
		}
		fs := fabric.NewFaultSet(tp)
		got := coneTables(tp, fs, tc.rank, "got", nil)
		for id := range want.Out {
			for j, p := range want.Out[id] {
				if tp.Node(topo.NodeID(id)).Kind == topo.Host && tp.Node(topo.NodeID(id)).Index == j {
					continue // delivered; cone leaves it unset either way
				}
				if got.Out[id][j] != p {
					t.Fatalf("%s: cone tables differ from ranked d-mod-k at node %d dst %d: got %d want %d",
						tc.label, id, j, got.Out[id][j], p)
				}
			}
		}
	}
}

// faultedCatalog runs the catalog with the fault context filled the way
// ftcheck -engine does.
func faultedCatalog(t *testing.T, tp *topo.Topology, tb *Tables, fs *fabric.FaultSet) {
	t.Helper()
	unset := make(map[int]bool, len(tb.Unroutable))
	for _, u := range tb.Unroutable {
		unset[u] = true
	}
	rep := invariant.Run(&invariant.Instance{
		Topo:       tp,
		Router:     tb.Router,
		Unroutable: func(j int) bool { return unset[j] },
		Alive:      fs.Alive,
	}, nil)
	if !rep.Pass {
		t.Fatalf("faulted catalog failed: %v", rep.FailedNames())
	}
}

// TestFaultedCatalog runs every fault-aware engine through escalating
// fault sets and the full catalog: the repaired tables must stay total
// over served pairs, minimal, up*/down* and dead-link-free.
func TestFaultedCatalog(t *testing.T) {
	tp := build324(t)
	for _, name := range []string{"dmodk", "nodetype-lb", "fault-resilient"} {
		e, err := Build(name, tp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, faults := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("%s/%d-links", name, faults), func(t *testing.T) {
				fs := fabric.NewFaultSet(tp)
				if err := fs.FailRandomFabricLinks(faults, int64(faults)*7+1); err != nil {
					t.Fatal(err)
				}
				tb, err := e.Tables(fs)
				if err != nil {
					t.Fatal(err)
				}
				faultedCatalog(t, tp, tb, fs)
			})
		}
	}
}

// TestFaultResilientMatchesLenient: the repatched arena must be
// indistinguishable from a full lenient compile of the same repaired
// tables — same broken set, same served paths.
func TestFaultResilientMatchesLenient(t *testing.T) {
	tp := build324(t)
	e, err := Build("fault-resilient", tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs := fabric.NewFaultSet(tp)
	if err := fs.FailRandomFabricLinks(1, 42); err != nil {
		t.Fatal(err)
	}
	tb, err := e.Tables(fs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := route.CompileLenient(tb.LFT)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Compiled.NumBroken() != want.NumBroken() {
		t.Fatalf("repatch broken=%d, full lenient compile broken=%d", tb.Compiled.NumBroken(), want.NumBroken())
	}
	n := tp.NumHosts()
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			if tb.Compiled.Broken(src, dst) != want.Broken(src, dst) {
				t.Fatalf("pair %d->%d: repatch broken=%v, lenient=%v", src, dst, tb.Compiled.Broken(src, dst), want.Broken(src, dst))
			}
			if tb.Compiled.Broken(src, dst) {
				if _, err := tb.Compiled.PackedPath(src, dst); !errors.Is(err, route.ErrNoPath) {
					t.Fatalf("broken pair %d->%d: err = %v, want ErrNoPath", src, dst, err)
				}
				continue
			}
			a, err1 := tb.Compiled.PackedPath(src, dst)
			b, err2 := want.PackedPath(src, dst)
			if err1 != nil || err2 != nil {
				t.Fatalf("pair %d->%d: packed path errs %v / %v", src, dst, err1, err2)
			}
			if len(a) != len(b) {
				t.Fatalf("pair %d->%d: repatch path %d hops, lenient %d", src, dst, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("pair %d->%d hop %d: repatch %d, lenient %d", src, dst, i, a[i], b[i])
				}
			}
		}
	}
}

// TestFaultResilientLatency pins the tentpole's performance claim: under
// a 1-link fault the incremental repair must beat the whole-table
// recompute (reroute + full lenient compile) that the dmodk engine pays.
// Both sides take their best of several runs to shrug off scheduler
// noise.
func TestFaultResilientLatency(t *testing.T) {
	tp := build324(t)
	e, err := Build("fault-resilient", tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs := fabric.NewFaultSet(tp)
	if err := fs.FailRandomFabricLinks(1, 42); err != nil {
		t.Fatal(err)
	}
	best := func(f func()) time.Duration {
		d := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			start := time.Now()
			f()
			if e := time.Since(start); e < d {
				d = e
			}
		}
		return d
	}
	patch := best(func() {
		if _, err := e.Tables(fs); err != nil {
			t.Fatal(err)
		}
	})
	full := best(func() {
		lft, _, err := fs.RouteAround()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := route.CompileLenient(lft); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("incremental repair %v vs full rebuild %v (%.1fx)", patch, full, float64(full)/float64(patch))
	if patch >= full {
		t.Errorf("incremental repair (%v) not faster than full rebuild (%v)", patch, full)
	}
}

// brokenTestEngine serves tables with a forwarding hole — the
// deliberately broken engine the catalog must catch (route.total).
type brokenTestEngine struct{ t *topo.Topology }

func (e *brokenTestEngine) Name() string { return "broken-test" }

func (e *brokenTestEngine) Tables(fs *fabric.FaultSet) (*Tables, error) {
	lft := route.DModK(e.t)
	lft.Name = "broken-test"
	for id := range lft.Out {
		if e.t.Node(topo.NodeID(id)).Kind == topo.Switch {
			lft.Out[id][0] = topo.None
			break
		}
	}
	return &Tables{Router: lft, LFT: lft}, nil
}

func init() {
	Register(Info{Name: "broken-test", Description: "deliberately broken (test only)", LFT: true},
		func(t *topo.Topology, opts Options) (Engine, error) {
			return &brokenTestEngine{t: t}, nil
		})
}

// TestBrokenEngineFailsCatalog: the invariant harness must bite when an
// engine misroutes.
func TestBrokenEngineFailsCatalog(t *testing.T) {
	tp := buildSmall(t)
	e, err := Build("broken-test", tp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := e.Tables(nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := invariant.Run(&invariant.Instance{Topo: tp, Router: tb.Router}, nil)
	if rep.Pass {
		t.Fatal("catalog passed a deliberately broken engine")
	}
}

func TestRegisterPanics(t *testing.T) {
	for _, tc := range []struct {
		label string
		info  Info
		b     Builder
	}{
		{"empty name", Info{}, func(*topo.Topology, Options) (Engine, error) { return nil, nil }},
		{"nil builder", Info{Name: "x-nil"}, nil},
		{"duplicate", Info{Name: "dmodk"}, func(*topo.Topology, Options) (Engine, error) { return nil, nil }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%s) did not panic", tc.label)
				}
			}()
			Register(tc.info, tc.b)
		}()
	}
}
