package engine

import (
	"fmt"

	"fattree/internal/fabric"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func init() {
	Register(Info{
		Name:        "fault-resilient",
		Description: "D-Mod-K with incremental local repair (Gliksberg '22b): re-spread only fault-touched destinations",
		LFT:         true,
		FaultAware:  true,
	}, func(t *topo.Topology, opts Options) (Engine, error) {
		base := route.DModK(t)
		baseC, err := route.Compile(base)
		if err != nil {
			return nil, err
		}
		wprod, mprod := levelProds(t.Spec)
		return &faultresEngine{t: t, base: base, baseC: baseC, wprod: wprod, mprod: mprod}, nil
	})
}

// faultresEngine keeps the healthy D-Mod-K baseline (tables and compiled
// arena) and on faults repairs only what a fault actually touched: the
// destination columns whose up- or down-going entries cross a dead link
// are re-spread across the surviving ports with the same down-cone
// growth the full reroute uses, and the compiled arena is repatched in
// place of a whole-fabric recompile. Everything else — the vast majority
// of columns and path entries after a typical single-link failure — is
// carried over untouched, which is where the reroute-latency win over a
// full rebuild comes from.
type faultresEngine struct {
	t            *topo.Topology
	base         *route.LFT
	baseC        *route.Compiled
	wprod, mprod []int
}

func (e *faultresEngine) Name() string { return "fault-resilient" }

func (e *faultresEngine) Tables(fs *fabric.FaultSet) (*Tables, error) {
	if fs == nil || fs.Failed() == 0 {
		return &Tables{Router: e.baseC, LFT: e.base, Compiled: e.baseC}, nil
	}
	t := e.t
	n := t.NumHosts()
	un := deadUplinkHosts(t, fs)
	unset := make([]bool, n)
	for _, u := range un {
		unset[u] = true
	}

	// Dirty destinations: columns whose baseline entries forward through
	// a dead link, in either direction. Dead host uplinks dirty nothing —
	// they make the host unroutable, handled below.
	dirtySet := make([]bool, n)
	var dirty []int
	for _, l := range fs.FailedLinks() {
		lk := &t.Links[l]
		lo, up := t.Ports[lk.Lower].Node, t.Ports[lk.Upper].Node
		if t.Node(lo).Kind == topo.Host {
			continue
		}
		for j := 0; j < n; j++ {
			if dirtySet[j] || unset[j] {
				continue
			}
			if e.base.Out[lo][j] == lk.Lower || e.base.Out[up][j] == lk.Upper {
				dirtySet[j] = true
				dirty = append(dirty, j)
			}
		}
	}

	lft := e.base.Clone(fmt.Sprintf("d-mod-k-patch[%d faults]", fs.Failed()))
	for _, u := range un {
		hid := t.HostID(u)
		for j := 0; j < n; j++ {
			lft.Out[hid][j] = topo.None
		}
		for id := range lft.Out {
			lft.Out[id][u] = topo.None
		}
	}
	canReach := make([]bool, len(t.Nodes))
	for _, j := range dirty {
		coneColumn(lft, fs, nil, e.wprod, e.mprod, canReach, j)
	}

	c, err := e.baseC.Repatch(lft, dirty, un)
	if err != nil {
		// Disconnected or otherwise unpatchable: fall back to the full
		// lenient rebuild, which serves whatever remains reachable.
		c, err = route.CompileLenient(lft)
		if err != nil {
			return nil, err
		}
	}
	return &Tables{
		Router:      c,
		LFT:         lft,
		Compiled:    c,
		Unroutable:  un,
		BrokenPairs: brokenAmongRoutable(n, c.NumBroken(), un),
	}, nil
}
