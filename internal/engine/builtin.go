package engine

import (
	"fmt"

	"fattree/internal/fabric"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func init() {
	Register(Info{
		Name:        "dmodk",
		Description: "paper's D-Mod-K (equation 1); reroutes with per-destination down-cone growth",
		LFT:         true,
		FaultAware:  true,
	}, func(t *topo.Topology, opts Options) (Engine, error) {
		healthy, err := healthyTables(route.DModK(t))
		if err != nil {
			return nil, err
		}
		return &dmodkEngine{t: t, healthy: healthy}, nil
	})

	Register(Info{
		Name:        "dmodk-naive",
		Description: "textbook D-Mod-K without the parallel-copy down rule; fault-oblivious baseline",
		LFT:         true,
	}, func(t *topo.Topology, opts Options) (Engine, error) {
		return newLFTEngine("dmodk-naive", route.DModKNaive(t))
	})

	Register(Info{
		Name:        "minhop-random",
		Description: "seeded random minimal up-port selection; fault-oblivious baseline",
		LFT:         true,
	}, func(t *topo.Topology, opts Options) (Engine, error) {
		return newLFTEngine("minhop-random", route.MinHopRandom(t, opts.Seed))
	})

	Register(Info{
		Name:        "smodk",
		Description: "source-based S-Mod-K; spreads by source index, no forwarding-table realization",
	}, func(t *topo.Topology, opts Options) (Engine, error) {
		s := route.NewSModK(t)
		c, err := route.Compile(s)
		if err != nil {
			return nil, err
		}
		return &routerEngine{
			name:    "smodk",
			t:       t,
			rt:      s,
			healthy: &Tables{Router: c, Compiled: c},
		}, nil
	})
}

// healthyTables compiles a fully routable LFT into the Tables a healthy
// fabric serves.
func healthyTables(lft *route.LFT) (*Tables, error) {
	c, err := route.Compile(lft)
	if err != nil {
		return nil, err
	}
	return &Tables{Router: c, LFT: lft, Compiled: c}, nil
}

// faultedTables leniently compiles rt against the fault set and fills the
// shared collateral accounting: every pair whose path crosses a dead link
// (or that rt refuses) comes back broken, and BrokenPairs excludes the
// pairs already doomed by unroutable hosts.
func faultedTables(t *topo.Topology, rt route.Router, lft *route.LFT, fs *fabric.FaultSet) (*Tables, error) {
	c, err := route.CompileLenient(newAliveOnly(rt, fs))
	if err != nil {
		return nil, err
	}
	un := deadUplinkHosts(t, fs)
	return &Tables{
		Router:      c,
		LFT:         lft,
		Compiled:    c,
		Unroutable:  un,
		BrokenPairs: brokenAmongRoutable(t.NumHosts(), c.NumBroken(), un),
	}, nil
}

// dmodkEngine serves the paper's D-Mod-K tables and falls back to the
// fabric reroute (down-cone growth) on faults.
type dmodkEngine struct {
	t       *topo.Topology
	healthy *Tables
}

func (e *dmodkEngine) Name() string { return "dmodk" }

func (e *dmodkEngine) Tables(fs *fabric.FaultSet) (*Tables, error) {
	if fs == nil || fs.Failed() == 0 {
		return e.healthy, nil
	}
	lft, rr, err := fs.RouteAround()
	if err != nil {
		return nil, err
	}
	c, err := route.CompileLenient(lft)
	if err != nil {
		return nil, err
	}
	return &Tables{
		Router:      c,
		LFT:         lft,
		Compiled:    c,
		Unroutable:  rr.UnroutableHosts,
		BrokenPairs: brokenAmongRoutable(e.t.NumHosts(), c.NumBroken(), rr.UnroutableHosts),
	}, nil
}

// lftEngine wraps a fault-oblivious forwarding-table routing: under
// faults the tables stay as programmed and every pair crossing a dead
// link is refused rather than repaired.
type lftEngine struct {
	name    string
	lft     *route.LFT
	healthy *Tables
}

func newLFTEngine(name string, lft *route.LFT) (*lftEngine, error) {
	healthy, err := healthyTables(lft)
	if err != nil {
		return nil, err
	}
	return &lftEngine{name: name, lft: lft, healthy: healthy}, nil
}

func (e *lftEngine) Name() string { return e.name }

func (e *lftEngine) Tables(fs *fabric.FaultSet) (*Tables, error) {
	if fs == nil || fs.Failed() == 0 {
		return e.healthy, nil
	}
	return faultedTables(e.lft.T, e.lft, e.lft, fs)
}

// routerEngine is lftEngine for routings with no forwarding-table
// realization (source-based schemes).
type routerEngine struct {
	name    string
	t       *topo.Topology
	rt      route.Router
	healthy *Tables
}

func (e *routerEngine) Name() string { return e.name }

func (e *routerEngine) Tables(fs *fabric.FaultSet) (*Tables, error) {
	if fs == nil || fs.Failed() == 0 {
		return e.healthy, nil
	}
	return faultedTables(e.t, e.rt, nil, fs)
}

// aliveOnly filters a router through a snapshot of the dead links: a walk
// that crosses one delivers its hops (so lenient compiles account the
// partial path) and then fails, which is exactly the contract that makes
// CompileLenient mark the pair broken. It snapshots the fault set instead
// of holding it because callers (the fabric manager) mutate their live
// FaultSet between epochs while compiled arenas stay immutable.
type aliveOnly struct {
	inner route.Router
	dead  []bool
}

func newAliveOnly(r route.Router, fs *fabric.FaultSet) *aliveOnly {
	dead := make([]bool, len(r.Topology().Links))
	for _, l := range fs.FailedLinks() {
		dead[l] = true
	}
	return &aliveOnly{inner: r, dead: dead}
}

func (a *aliveOnly) Topology() *topo.Topology { return a.inner.Topology() }

func (a *aliveOnly) Label() string { return a.inner.Label() }

func (a *aliveOnly) Walk(src, dst int, visit func(link topo.LinkID, up bool)) error {
	var hit topo.LinkID = topo.LinkID(-1)
	if err := a.inner.Walk(src, dst, func(l topo.LinkID, up bool) {
		if a.dead[l] && hit < 0 {
			hit = l
		}
		visit(l, up)
	}); err != nil {
		return err
	}
	if hit >= 0 {
		return fmt.Errorf("route: %s: path %d->%d crosses dead link %d", a.Label(), src, dst, hit)
	}
	return nil
}
