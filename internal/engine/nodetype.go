package engine

import (
	"fmt"

	"fattree/internal/fabric"
	"fattree/internal/route"
	"fattree/internal/topo"
)

func init() {
	Register(Info{
		Name:        "nodetype-lb",
		Description: "D-Mod-K spread per destination node type (Gliksberg '22); single type is plain D-Mod-K",
		LFT:         true,
		FaultAware:  true,
	}, func(t *topo.Topology, opts Options) (Engine, error) {
		if opts.NodeTypes != nil && len(opts.NodeTypes) != t.NumHosts() {
			return nil, fmt.Errorf("engine: nodetype-lb: %d node types for %d hosts", len(opts.NodeTypes), t.NumHosts())
		}
		rank, types := typeRanks(t.NumHosts(), opts.NodeTypes)
		name := "nodetype-lb"
		if rank != nil {
			name = fmt.Sprintf("nodetype-lb[%d types]", types)
		}
		lft, err := route.DModKRanked(t, rank, name)
		if err != nil {
			return nil, err
		}
		healthy, err := healthyTables(lft)
		if err != nil {
			return nil, err
		}
		return &nodetypeEngine{t: t, rank: rank, name: name, healthy: healthy}, nil
	})
}

// typeRanks maps each host to its rank within its node type — the count
// of lower-indexed hosts sharing the type — so D-Mod-K's cyclic up-port
// spreading restarts gap-free inside every type instead of letting an
// interleaved placement (compute, storage, admin nodes striped across
// leaves) alias whole types onto the same spines. It also returns the
// number of distinct types. A nil assignment means one type, for which
// the ranking is the identity (returned as nil).
func typeRanks(n int, types []int) (rank []int, distinct int) {
	if types == nil {
		return nil, 1
	}
	rank = make([]int, n)
	count := map[int]int{}
	for j := 0; j < n; j++ {
		rank[j] = count[types[j]]
		count[types[j]]++
	}
	return rank, len(count)
}

// nodetypeEngine routes with per-type ranked D-Mod-K and repairs faults
// with the same down-cone growth as the fabric reroute, keyed by rank.
type nodetypeEngine struct {
	t       *topo.Topology
	rank    []int
	name    string
	healthy *Tables
}

func (e *nodetypeEngine) Name() string { return "nodetype-lb" }

func (e *nodetypeEngine) Tables(fs *fabric.FaultSet) (*Tables, error) {
	if fs == nil || fs.Failed() == 0 {
		return e.healthy, nil
	}
	un := deadUplinkHosts(e.t, fs)
	lft := coneTables(e.t, fs, e.rank, fmt.Sprintf("%s-reroute[%d faults]", e.name, fs.Failed()), un)
	c, err := route.CompileLenient(lft)
	if err != nil {
		return nil, err
	}
	return &Tables{
		Router:      c,
		LFT:         lft,
		Compiled:    c,
		Unroutable:  un,
		BrokenPairs: brokenAmongRoutable(e.t.NumHosts(), c.NumBroken(), un),
	}, nil
}

// coneTables rebuilds a full table set around the fault set with the
// ranked spreading rule: one coneColumn pass per routable destination.
// Columns of unroutable destinations stay empty so walks to them fail
// and lenient compiles mark their pairs broken.
func coneTables(t *topo.Topology, fs *fabric.FaultSet, rank []int, name string, unroutable []int) *route.LFT {
	lft := route.NewLFT(t, name)
	wprod, mprod := levelProds(t.Spec)
	unset := make([]bool, t.NumHosts())
	for _, u := range unroutable {
		unset[u] = true
	}
	canReach := make([]bool, len(t.Nodes))
	for j := 0; j < t.NumHosts(); j++ {
		if unset[j] {
			continue
		}
		coneColumn(lft, fs, rank, wprod, mprod, canReach, j)
	}
	return lft
}

// levelProds precomputes the per-level products of w and m the spreading
// rule divides by.
func levelProds(g topo.PGFT) (wprod, mprod []int) {
	wprod = make([]int, g.H+1)
	mprod = make([]int, g.H+1)
	wprod[0], mprod[0] = 1, 1
	for l := 1; l <= g.H; l++ {
		wprod[l] = wprod[l-1] * g.Wi(l)
		mprod[l] = mprod[l-1] * g.Mi(l)
	}
	return wprod, mprod
}

// coneColumn recomputes the forwarding entries towards destination j
// around the fault set, the fabric-reroute algorithm parameterized by a
// rank table: grow the reachable down cone from j upward (among parallel
// copies into a parent the ranked equation (1) copy wins when alive),
// then point every other node up towards the cone with a linear probe
// from the ranked preferred up port. With no faults and a nil rank the
// column is bit-identical to D-Mod-K's. The column is cleared first, so
// the fault-resilient engine can call this on a cloned base table to
// repair just the columns a fault touched. canReach is caller-provided
// scratch of len(t.Nodes).
func coneColumn(lft *route.LFT, fs *fabric.FaultSet, rank []int, wprod, mprod []int, canReach []bool, j int) {
	t := lft.T
	g := t.Spec
	rj := j
	if rank != nil {
		rj = rank[j]
	}
	for i := range canReach {
		canReach[i] = false
	}
	for id := range lft.Out {
		lft.Out[id][j] = topo.None
	}
	host := t.Host(j)
	canReach[host.ID] = true

	frontier := []topo.NodeID{host.ID}
	for l := 0; l < g.H; l++ {
		var next []topo.NodeID
		for _, cid := range frontier {
			c := t.Node(cid)
			for _, pid := range c.Up {
				if !fs.Alive(t.Ports[pid].Link) {
					continue
				}
				peerPort := t.PeerPort(pid)
				parent := t.Ports[peerPort].Node
				if lft.Out[parent][j] == topo.None {
					lft.Out[parent][j] = peerPort
					canReach[parent] = true
					next = append(next, parent)
				} else if preferredDownRanked(t, g, wprod, mprod, j, rj, parent, l+1) == peerPort {
					lft.Out[parent][j] = peerPort
				}
			}
		}
		frontier = dedupeNodes(next)
	}

	// Point everything else up, top level down to the leaves, so
	// parents' reachability is known before children choose.
	for l := g.H - 1; l >= 0; l-- {
		for _, id := range t.ByLevel[l] {
			node := t.Node(id)
			if canReach[id] || (node.Kind == topo.Host && node.Index == j) {
				continue
			}
			if node.Kind == topo.Host {
				// Hosts have one uplink.
				pid := node.Up[0]
				if fs.Alive(t.Ports[pid].Link) && canReach[t.PeerNode(pid)] {
					lft.Out[id][j] = pid
					canReach[id] = true
				}
				continue
			}
			u := len(node.Up)
			q0 := (rj / wprod[l]) % u
			for k := 0; k < u; k++ {
				pid := node.Up[(q0+k)%u]
				if !fs.Alive(t.Ports[pid].Link) {
					continue
				}
				if canReach[t.PeerNode(pid)] {
					lft.Out[id][j] = pid
					canReach[id] = true
					break
				}
			}
		}
	}
}

// preferredDownRanked returns the down port on parent the fault-free
// ranked rule would use towards destination j: the child digit a follows
// j's real address (delivery), the parallel copy k follows its rank
// (spreading), or topo.None if out of range.
func preferredDownRanked(t *topo.Topology, g topo.PGFT, wprod, mprod []int, j, rj int, parent topo.NodeID, l int) topo.PortID {
	node := t.Node(parent)
	a := (j / mprod[l-1]) % g.Mi(l)
	k := (rj / wprod[l-1]) % (g.Wi(l) * g.Pi(l)) / g.Wi(l)
	r := a + k*g.Mi(l)
	if r >= len(node.Down) {
		return topo.None
	}
	return node.Down[r]
}

func dedupeNodes(ids []topo.NodeID) []topo.NodeID {
	seen := make(map[topo.NodeID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
