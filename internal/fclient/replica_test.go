package fclient

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"fattree/internal/fmgr"
	"fattree/internal/obs"
	"fattree/internal/topo"
	"fattree/internal/wire"
)

func buildTopo(tb testing.TB, spec string) *topo.Topology {
	tb.Helper()
	g, err := topo.ParseSpec(spec)
	if err != nil {
		tb.Fatal(err)
	}
	t, err := topo.Build(g)
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func newReplicaManager(tb testing.TB, spec string) *fmgr.Manager {
	tb.Helper()
	m, err := fmgr.New(fmgr.Config{
		Topo:     buildTopo(tb, spec),
		Debounce: 5 * time.Millisecond,
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(m.Close)
	m.Start()
	return m
}

// serveBinary exposes one manager's wire protocol on a loopback
// listener and returns its address.
func serveBinary(tb testing.TB, m *fmgr.Manager) string {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go m.ServeWire(c)
		}
	}()
	tb.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func waitManagerEpoch(tb testing.TB, m *fmgr.Manager, min uint64) *fmgr.FabricState {
	tb.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := m.Current()
		if st.Epoch >= min {
			return st
		}
		if time.Now().After(deadline) {
			tb.Fatalf("timed out waiting for epoch %d (at %d)", min, st.Epoch)
		}
		time.Sleep(time.Millisecond)
	}
}

// fabricLinks returns deterministic switch-to-switch links, so the same
// fault sequence can be replayed onto independent replicas.
func fabricLinks(tb testing.TB, t *topo.Topology, n int) []topo.LinkID {
	tb.Helper()
	var out []topo.LinkID
	for i := range t.Links {
		if t.Links[i].Level >= 2 {
			out = append(out, topo.LinkID(i))
			if len(out) == n {
				return out
			}
		}
	}
	tb.Fatalf("only %d fabric links, need %d", len(out), n)
	return nil
}

// TestMultiReplicaEquivalence is the replica-convergence wall: two
// independent daemons fed the same fault sequence must serve
// byte-identical epoch-stamped route sets at every epoch, and a client
// interleaving requests across both replicas while faults land must
// never observe a set that (a) rolls its job's epoch backwards or
// (b) differs from the canonical set of the epoch it is stamped with —
// i.e. no mixed-epoch hops, ever. Run under -race in the race suite.
func TestMultiReplicaEquivalence(t *testing.T) {
	const spec = "rlft2:4,8"
	ma := newReplicaManager(t, spec)
	mb := newReplicaManager(t, spec)

	ja, err := ma.AllocJob(8, false)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := mb.AllocJob(8, false)
	if err != nil {
		t.Fatal(err)
	}
	if ja.ID != jb.ID {
		t.Fatalf("replicas placed different job IDs: %d vs %d", ja.ID, jb.ID)
	}
	job := ja.ID

	// expected[epoch] is the canonical job frame for that epoch,
	// identical across replicas by construction (asserted below).
	expected := map[uint64][]byte{}
	var expMu sync.Mutex
	record := func(epoch uint64) {
		sa := waitManagerEpoch(t, ma, epoch)
		sb := waitManagerEpoch(t, mb, epoch)
		fa, fb := sa.JobRouteSets[job].Frame, sb.JobRouteSets[job].Frame
		if len(fa) == 0 || !bytes.Equal(fa, fb) {
			t.Fatalf("epoch %d: replica frames differ (len %d vs %d)", epoch, len(fa), len(fb))
		}
		expMu.Lock()
		expected[epoch] = append([]byte(nil), fa...)
		expMu.Unlock()
	}
	record(2) // placement rebuild

	c, err := New(Config{Addrs: []string{serveBinary(t, ma), serveBinary(t, mb)}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Interleaving client: hammer JobRouteSet across both replicas
	// while the fault sequence lands.
	type obsSet struct {
		epoch uint64
		frame []byte
	}
	var observed []obsSet
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			set, err := c.JobRouteSet(uint64(job))
			if err != nil {
				t.Errorf("JobRouteSet: %v", err)
				return
			}
			observed = append(observed, obsSet{set.Epoch, wire.EncodeFrame(set)})
		}
	}()

	// The same deterministic fault sequence onto both replicas.
	links := fabricLinks(t, buildTopo(t, spec), 3)
	for i, l := range links {
		if _, err := ma.InjectFaults([]topo.LinkID{l}, nil, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := mb.InjectFaults([]topo.LinkID{l}, nil, 0); err != nil {
			t.Fatal(err)
		}
		record(uint64(3 + i))
	}

	close(stop)
	wg.Wait()

	if len(observed) == 0 {
		t.Fatal("client made no observations")
	}
	var last uint64
	for i, o := range observed {
		if o.epoch < last {
			t.Fatalf("observation %d: epoch rolled back %d -> %d", i, last, o.epoch)
		}
		last = o.epoch
		want, ok := expected[o.epoch]
		if !ok {
			t.Fatalf("observation %d: epoch %d was never canonical", i, o.epoch)
		}
		if !bytes.Equal(o.frame, want) {
			t.Fatalf("observation %d: epoch %d set differs from the canonical frame — mixed-epoch hops", i, o.epoch)
		}
	}
	if n := c.EpochRegressions(); n != 0 {
		t.Fatalf("%d epoch regressions against monotonic replicas", n)
	}
	t.Logf("%d interleaved observations across epochs 2..%d, all canonical", len(observed), last)
}
