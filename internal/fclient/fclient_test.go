package fclient

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fattree/internal/wire"
)

// fakeReplica is a scriptable server speaking the binary protocol: its
// epoch is settable mid-test, and job answers can be skewed relative to
// the probe epoch to exercise the client's regression guard.
type fakeReplica struct {
	ln net.Listener

	mu        sync.Mutex
	epoch     uint64
	jobEpoch  uint64 // epoch stamped on job responses; 0 = use epoch
	epochReqs atomic.Int64
	setReqs   atomic.Int64
	lastHint  atomic.Uint64
	conns     []net.Conn
}

func newFakeReplica(t *testing.T, epoch uint64) *fakeReplica {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeReplica{ln: ln, epoch: epoch}
	go f.acceptLoop()
	t.Cleanup(f.stop)
	return f
}

func (f *fakeReplica) addr() string { return f.ln.Addr().String() }

func (f *fakeReplica) setEpoch(e uint64) {
	f.mu.Lock()
	f.epoch = e
	f.mu.Unlock()
}

func (f *fakeReplica) setJobEpoch(e uint64) {
	f.mu.Lock()
	f.jobEpoch = e
	f.mu.Unlock()
}

func (f *fakeReplica) stop() {
	f.ln.Close()
	f.mu.Lock()
	for _, c := range f.conns {
		c.Close()
	}
	f.conns = nil
	f.mu.Unlock()
}

func (f *fakeReplica) acceptLoop() {
	for {
		c, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.mu.Lock()
		f.conns = append(f.conns, c)
		f.mu.Unlock()
		go f.serve(c)
	}
}

func (f *fakeReplica) serve(c net.Conn) {
	defer c.Close()
	for {
		m, err := wire.ReadMessage(c)
		if err != nil {
			return
		}
		f.mu.Lock()
		epoch, jobEpoch := f.epoch, f.jobEpoch
		f.mu.Unlock()
		if jobEpoch == 0 {
			jobEpoch = epoch
		}
		var resp wire.Message
		switch req := m.(type) {
		case wire.EpochReq:
			f.epochReqs.Add(1)
			resp = &wire.EpochResp{Epoch: epoch, Engine: "dmodk"}
		case *wire.RouteSetReq:
			f.lastHint.Store(req.EpochHint)
			if req.EpochHint != 0 && req.EpochHint == jobEpoch {
				resp = &wire.NotModified{Epoch: jobEpoch}
				break
			}
			f.setReqs.Add(1)
			resp = &wire.RouteSetResp{
				Epoch: jobEpoch, Engine: "dmodk", Routing: "d-mod-k",
				Pairs: []wire.PairRoute{{Src: 0, Dst: 1, OK: true, Hops: []uint32{uint32(jobEpoch)<<1 | 1, 4}}},
			}
		default:
			resp = &wire.ErrorResp{Code: wire.CodeBadRequest, Msg: "fake: unexpected type"}
		}
		if err := wire.WriteMessage(c, resp); err != nil {
			return
		}
	}
}

func newClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 10 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClientEpochProbe(t *testing.T) {
	f := newFakeReplica(t, 7)
	c := newClient(t, Config{Addrs: []string{f.addr()}})
	epoch, eng, err := c.Epoch()
	if err != nil || epoch != 7 || eng != "dmodk" {
		t.Fatalf("epoch=%d eng=%q err=%v", epoch, eng, err)
	}
	// Second probe reuses the connection.
	if _, _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	conns := len(f.conns)
	f.mu.Unlock()
	if conns != 1 {
		t.Fatalf("%d connections for 2 probes, want 1 (no reuse)", conns)
	}
}

// TestClientJobCacheRevalidation pins the cache economics: a
// steady-state JobRouteSet call costs the server one epoch probe and
// zero route-set fetches, and an epoch bump triggers exactly one
// refetch carrying the pinned epoch as hint.
func TestClientJobCacheRevalidation(t *testing.T) {
	f := newFakeReplica(t, 5)
	c := newClient(t, Config{Addrs: []string{f.addr()}})

	set1, err := c.JobRouteSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if set1.Epoch != 5 || f.setReqs.Load() != 1 {
		t.Fatalf("first fetch: epoch %d, %d set reqs", set1.Epoch, f.setReqs.Load())
	}

	// Same epoch: N calls are probe-only cache hits.
	for i := 0; i < 3; i++ {
		set, err := c.JobRouteSet(3)
		if err != nil {
			t.Fatal(err)
		}
		if set != set1 {
			t.Fatal("cache hit returned a different set")
		}
	}
	if got := f.setReqs.Load(); got != 1 {
		t.Fatalf("steady state refetched: %d set reqs, want 1", got)
	}
	if probes := f.epochReqs.Load(); probes < 3 {
		t.Fatalf("only %d epoch probes for 3 revalidations", probes)
	}

	// Epoch bump: one refetch, hinted with the pinned epoch.
	f.setEpoch(9)
	set2, err := c.JobRouteSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if set2.Epoch != 9 || f.setReqs.Load() != 2 {
		t.Fatalf("refetch: epoch %d, %d set reqs", set2.Epoch, f.setReqs.Load())
	}
	if hint := f.lastHint.Load(); hint != 5 {
		t.Fatalf("refetch hint %d, want pinned epoch 5", hint)
	}
}

// TestClientEpochRegressionGuard proves a pinned set never rolls back:
// whether the stale answer shows up at the probe or in the refetch
// response, the client keeps the pinned epoch and counts the event.
func TestClientEpochRegressionGuard(t *testing.T) {
	f := newFakeReplica(t, 5)
	c := newClient(t, Config{Addrs: []string{f.addr()}})
	set1, err := c.JobRouteSet(3)
	if err != nil || set1.Epoch != 5 {
		t.Fatalf("seed fetch: %v epoch=%d", err, set1.Epoch)
	}

	// Probe-visible regression: server rolls back to 3.
	f.setEpoch(3)
	set, err := c.JobRouteSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if set.Epoch != 5 || c.EpochRegressions() != 1 {
		t.Fatalf("probe regression: served epoch %d, %d regressions (want 5, 1)",
			set.Epoch, c.EpochRegressions())
	}
	if f.setReqs.Load() != 1 {
		t.Fatalf("regressed probe still caused a refetch (%d set reqs)", f.setReqs.Load())
	}

	// Refetch-visible regression: the probe advertises 9 but the job
	// answer is stamped 2 (an inconsistent or lagging replica).
	f.setEpoch(9)
	f.setJobEpoch(2)
	set, err = c.JobRouteSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if set.Epoch != 5 || c.EpochRegressions() != 2 {
		t.Fatalf("refetch regression: served epoch %d, %d regressions (want 5, 2)",
			set.Epoch, c.EpochRegressions())
	}
}

// TestClientPickerPrefersNewestEpoch: once both replicas' epochs are
// known, requests go to the most advanced one only.
func TestClientPickerPrefersNewestEpoch(t *testing.T) {
	old := newFakeReplica(t, 4)
	cur := newFakeReplica(t, 9)
	c := newClient(t, Config{Addrs: []string{old.addr(), cur.addr()}})

	// Discovery: round-robin until both epochs are observed.
	for i := 0; i < 4; i++ {
		if _, _, err := c.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	oldBase := old.epochReqs.Load()
	for i := 0; i < 6; i++ {
		if _, _, err := c.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	if got := old.epochReqs.Load(); got != oldBase {
		t.Fatalf("stale replica still served %d probes after discovery", got-oldBase)
	}
	var sawDown bool
	for _, r := range c.Replicas() {
		if r.Addr == old.addr() && r.LastEpoch != 4 {
			t.Fatalf("stale replica status %+v", r)
		}
		sawDown = sawDown || r.Down
	}
	if sawDown {
		t.Fatal("healthy replicas reported as down")
	}
}

// TestClientFailover: killing the preferred replica sheds it into
// backoff and requests keep succeeding on the survivor; with every
// replica dead the attempt budget surfaces an error.
func TestClientFailover(t *testing.T) {
	a := newFakeReplica(t, 7)
	b := newFakeReplica(t, 7)
	c := newClient(t, Config{Addrs: []string{a.addr(), b.addr()}, MaxAttempts: 6,
		DialTimeout: 500 * time.Millisecond, RequestTimeout: time.Second})

	a.stop()
	for i := 0; i < 5; i++ {
		if _, _, err := c.Epoch(); err != nil {
			t.Fatalf("probe %d with one live replica: %v", i, err)
		}
	}
	down := 0
	for _, r := range c.Replicas() {
		if r.Down {
			down++
		}
	}
	if down != 1 {
		t.Fatalf("%d replicas down, want 1: %+v", down, c.Replicas())
	}

	b.stop()
	if _, _, err := c.Epoch(); err == nil {
		t.Fatal("probe succeeded with every replica dead")
	} else if !strings.Contains(err.Error(), "attempts failed") {
		t.Fatalf("unexpected failure shape: %v", err)
	}
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty address list")
	}
}

// TestClientClosedFailsFast: requests on a Closed client return
// ErrClosed immediately instead of sleeping through the whole
// per-replica retry budget.
func TestClientClosedFailsFast(t *testing.T) {
	f := newFakeReplica(t, 7)
	c := newClient(t, Config{Addrs: []string{f.addr()}, MaxAttempts: 100,
		RetryBase: 100 * time.Millisecond, RetryMax: time.Second})
	if _, _, err := c.Epoch(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	start := time.Now()
	if _, _, err := c.Epoch(); !errors.Is(err, ErrClosed) {
		t.Fatalf("probe on closed client: %v, want ErrClosed", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("closed client took %v to fail", d)
	}
}

// TestClientConcurrentUse hammers one Client from many goroutines —
// the documented safe-for-concurrent-use contract. Per-replica
// serialization means every caller must get a correctly typed,
// correctly attributed answer off the shared connection; under -race
// this also proves the connection state is guarded.
func TestClientConcurrentUse(t *testing.T) {
	f := newFakeReplica(t, 7)
	c := newClient(t, Config{Addrs: []string{f.addr()}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch i % 3 {
				case 0:
					epoch, _, err := c.Epoch()
					if err != nil || epoch != 7 {
						t.Errorf("goroutine %d: epoch=%d err=%v", g, epoch, err)
						return
					}
				case 1:
					set, err := c.JobRouteSet(uint64(g))
					if err != nil {
						t.Errorf("goroutine %d: job set: %v", g, err)
						return
					}
					if set.Epoch != 7 {
						t.Errorf("goroutine %d: job set epoch %d", g, set.Epoch)
						return
					}
				default:
					rs, err := c.RouteSet("", [][2]uint32{{0, 1}})
					if err != nil {
						t.Errorf("goroutine %d: route set: %v", g, err)
						return
					}
					if rs.Epoch != 7 {
						t.Errorf("goroutine %d: route set epoch %d", g, rs.Epoch)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	f.mu.Lock()
	conns := len(f.conns)
	f.mu.Unlock()
	if conns != 1 {
		t.Fatalf("%d connections dialed by one client, want 1 (serialized reuse)", conns)
	}
}
