// Package fclient is the Go client for ftfabricd's binary route
// protocol: persistent connections, multi-replica failover with
// per-replica backoff, and epoch-pinned per-job route-set caching so a
// steady-state consumer costs the daemon one epoch probe per
// revalidation, not a refetch.
//
// A Client is safe for concurrent use. Requests that land on the same
// replica are serialized on its single connection (the round-trip
// holds a per-replica mutex across write and read), so
// throughput-sensitive callers (load generators) should run one Client
// per worker.
package fclient

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"fattree/internal/wire"
)

// Config parameterizes a Client. Zero values pick the documented
// defaults.
type Config struct {
	// Addrs lists the replica endpoints (host:port). At least one is
	// required; order carries no preference — the picker ranks replicas
	// by observed epoch and health.
	Addrs []string
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// RequestTimeout bounds one request/response round-trip
	// (default 5s).
	RequestTimeout time.Duration
	// RetryBase is the first per-replica backoff after a connection
	// failure; it doubles per consecutive failure up to RetryMax
	// (defaults 50ms and 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxAttempts bounds replica attempts per request (default
	// 2*len(Addrs)).
	MaxAttempts int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.DialTimeout <= 0 {
		out.DialTimeout = 2 * time.Second
	}
	if out.RequestTimeout <= 0 {
		out.RequestTimeout = 5 * time.Second
	}
	if out.RetryBase <= 0 {
		out.RetryBase = 50 * time.Millisecond
	}
	if out.RetryMax <= 0 {
		out.RetryMax = 2 * time.Second
	}
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 2 * len(out.Addrs)
	}
	return out
}

// replica is the per-endpoint state: one persistent connection plus
// the health/epoch facts the picker ranks by.
type replica struct {
	addr string
	// reqMu serializes the dial+write+read of one request on this
	// replica's connection; without it concurrent callers picking the
	// same replica would interleave frames and read each other's
	// responses off the shared reader.
	reqMu     sync.Mutex
	conn      net.Conn
	br        *bufio.Reader
	lastEpoch uint64    // highest epoch seen in any response
	probed    bool      // at least one successful response seen
	fails     int       // consecutive connection failures
	downUntil time.Time // backoff gate; zero when healthy
}

// jobSet is one epoch-pinned cached route set.
type jobSet struct {
	epoch uint64
	set   *wire.RouteSetResp
}

// Client talks the binary protocol to one or more ftfabricd replicas.
type Client struct {
	cfg Config

	mu          sync.Mutex
	reps        []*replica
	rr          int // rotates tie-breaks across equally ranked replicas
	jobs        map[uint64]*jobSet
	regressions int64
	closed      bool
}

// ReplicaStatus is one replica's view in Replicas().
type ReplicaStatus struct {
	Addr      string
	Connected bool
	LastEpoch uint64
	Down      bool // in backoff after consecutive failures
}

// ErrNoReplicas means every configured replica failed within the
// attempt budget.
var ErrNoReplicas = errors.New("fclient: no replica available")

// ErrClosed means the Client was Closed; requests fail immediately
// rather than burning the retry budget.
var ErrClosed = errors.New("fclient: client closed")

// New builds a Client. It does not dial — connections are established
// lazily on first use.
func New(cfg Config) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("fclient: Config.Addrs is empty")
	}
	c := &Client{cfg: cfg.withDefaults(), jobs: map[uint64]*jobSet{}}
	for _, a := range cfg.Addrs {
		c.reps = append(c.reps, &replica{addr: a})
	}
	return c, nil
}

// Close drops every connection. The Client is unusable afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, r := range c.reps {
		if r.conn != nil {
			r.conn.Close()
			r.conn, r.br = nil, nil
		}
	}
	return nil
}

// EpochRegressions counts server answers that would have rolled a
// pinned job route set back to an older epoch. The guard kept the
// pinned set each time; a nonzero count means some replica served
// stale tables.
func (c *Client) EpochRegressions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.regressions
}

// Replicas reports per-replica health for operators and tests.
func (c *Client) Replicas() []ReplicaStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]ReplicaStatus, len(c.reps))
	for i, r := range c.reps {
		out[i] = ReplicaStatus{
			Addr:      r.addr,
			Connected: r.conn != nil,
			LastEpoch: r.lastEpoch,
			Down:      now.Before(r.downUntil),
		}
	}
	return out
}

// Epoch probes the best replica for its current epoch and engine.
func (c *Client) Epoch() (uint64, string, error) {
	resp, err := c.do(wire.EpochReq{})
	if err != nil {
		return 0, "", err
	}
	er, ok := resp.(*wire.EpochResp)
	if !ok {
		return 0, "", fmt.Errorf("fclient: epoch probe answered %T", resp)
	}
	return er.Epoch, er.Engine, nil
}

// Order fetches the epoch-stamped MPI node ordering.
func (c *Client) Order() (*wire.OrderResp, error) {
	resp, err := c.do(wire.OrderReq{})
	if err != nil {
		return nil, err
	}
	or, ok := resp.(*wire.OrderResp)
	if !ok {
		return nil, fmt.Errorf("fclient: order answered %T", resp)
	}
	return or, nil
}

// RouteSet resolves an explicit pair batch against engine (empty for
// the active engine). No caching: callers with a per-job working set
// should use JobRouteSet.
func (c *Client) RouteSet(engineName string, pairs [][2]uint32) (*wire.RouteSetResp, error) {
	resp, err := c.do(&wire.RouteSetReq{Engine: engineName, Pairs: pairs})
	if err != nil {
		return nil, err
	}
	rs, ok := resp.(*wire.RouteSetResp)
	if !ok {
		return nil, fmt.Errorf("fclient: route set answered %T", resp)
	}
	return rs, nil
}

// JobRouteSet returns the job's full route set, epoch-pinned. A cached
// set is revalidated with a cheap epoch probe: while the server epoch
// still matches, the cached set is returned without a refetch. When the
// epoch moved, the refetch carries the pinned epoch as a hint, and a
// response older than the pinned epoch is refused (the set never rolls
// back; see EpochRegressions).
func (c *Client) JobRouteSet(job uint64) (*wire.RouteSetResp, error) {
	c.mu.Lock()
	cached := c.jobs[job]
	c.mu.Unlock()

	if cached != nil {
		epoch, _, err := c.Epoch()
		if err == nil && epoch == cached.epoch {
			return cached.set, nil // revalidated: probe only, no refetch
		}
		if err == nil && epoch < cached.epoch {
			// The best replica is behind the pinned set. Serving its
			// tables would mix epochs backwards; keep the pinned set.
			c.noteRegression()
			return cached.set, nil
		}
		// Epoch moved forward (or the probe failed): refetch with the
		// pinned epoch as hint.
	}

	req := &wire.RouteSetReq{ByJob: true, Job: job}
	if cached != nil {
		req.EpochHint = cached.epoch
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	switch rs := resp.(type) {
	case *wire.NotModified:
		if cached != nil {
			return cached.set, nil
		}
		return nil, fmt.Errorf("fclient: NotModified without a cached set (epoch %d)", rs.Epoch)
	case *wire.RouteSetResp:
		c.mu.Lock()
		defer c.mu.Unlock()
		if cur := c.jobs[job]; cur != nil && rs.Epoch < cur.epoch {
			c.regressions++
			return cur.set, nil // never replace the pinned set with an older epoch
		}
		c.jobs[job] = &jobSet{epoch: rs.Epoch, set: rs}
		return rs, nil
	default:
		return nil, fmt.Errorf("fclient: job route set answered %T", resp)
	}
}

// InvalidateJob drops the cached set for a job (e.g. after freeing it).
func (c *Client) InvalidateJob(job uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.jobs, job)
}

func (c *Client) noteRegression() {
	c.mu.Lock()
	c.regressions++
	c.mu.Unlock()
}

// do runs one request with replica failover: pick the best replica,
// round-trip, and on a connection failure back it off and move on. A
// decoded ErrorResp is an application answer, not a transport failure —
// it is returned as an error without burning the replica.
func (c *Client) do(req wire.Message) (wire.Message, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		r := c.pick()
		if r == nil {
			if c.isClosed() {
				return nil, ErrClosed
			}
			// Everything is backing off; wait out the nearest gate
			// rather than spinning through the attempt budget.
			d := c.nearestWake()
			if d <= 0 || d > c.cfg.RetryMax {
				d = c.cfg.RetryBase
			}
			time.Sleep(d)
			continue
		}
		resp, err := c.roundTrip(r, req)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			lastErr = err
			c.markDown(r)
			continue
		}
		c.markUp(r, resp)
		if er, ok := resp.(*wire.ErrorResp); ok {
			return nil, fmt.Errorf("fclient: %s: %w", r.addr, er)
		}
		return resp, nil
	}
	if lastErr == nil {
		lastErr = ErrNoReplicas
	}
	return nil, fmt.Errorf("fclient: all %d attempts failed: %w", c.cfg.MaxAttempts, lastErr)
}

// pick returns the healthiest replica: not in backoff, highest
// observed epoch, ties rotated. A replica that served a lower epoch
// than some sibling is shed automatically until it catches up, but a
// never-probed replica stays a candidate — its epoch is unknown, and
// without discovery it could never be preferred.
func (c *Client) pick() *replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	now := time.Now()
	var bestEpoch uint64
	for _, r := range c.reps {
		if r.probed && !now.Before(r.downUntil) && r.lastEpoch > bestEpoch {
			bestEpoch = r.lastEpoch
		}
	}
	var cand []*replica
	for _, r := range c.reps {
		if now.Before(r.downUntil) {
			continue
		}
		if !r.probed || r.lastEpoch == bestEpoch {
			cand = append(cand, r)
		}
	}
	if len(cand) == 0 {
		return nil
	}
	c.rr++
	return cand[c.rr%len(cand)]
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Client) nearestWake() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var min time.Duration = -1
	now := time.Now()
	for _, r := range c.reps {
		if d := r.downUntil.Sub(now); d > 0 && (min < 0 || d < min) {
			min = d
		}
	}
	return min
}

// roundTrip sends one frame and reads one reply on r's connection,
// dialing lazily. r.reqMu is held across the whole exchange, so
// concurrent callers that picked the same replica queue instead of
// interleaving frames (or dials) on the shared connection. Any
// transport error invalidates the connection.
func (c *Client) roundTrip(r *replica, req wire.Message) (wire.Message, error) {
	r.reqMu.Lock()
	defer r.reqMu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	conn, br := r.conn, r.br
	c.mu.Unlock()
	if conn == nil {
		nc, err := net.DialTimeout("tcp", r.addr, c.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
		conn, br = nc, bufio.NewReaderSize(nc, 64<<10)
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			nc.Close()
			return nil, ErrClosed
		}
		r.conn, r.br = conn, br
		c.mu.Unlock()
	}

	conn.SetDeadline(time.Now().Add(c.cfg.RequestTimeout))
	if err := wire.WriteMessage(conn, req); err != nil {
		c.dropConn(r, conn)
		return nil, err
	}
	resp, err := wire.ReadMessage(br)
	if err != nil {
		c.dropConn(r, conn)
		return nil, err
	}
	return resp, nil
}

func (c *Client) dropConn(r *replica, conn net.Conn) {
	conn.Close()
	c.mu.Lock()
	if r.conn == conn {
		r.conn, r.br = nil, nil
	}
	c.mu.Unlock()
}

// markDown records a transport failure: exponential per-replica
// backoff, doubling per consecutive failure up to RetryMax.
func (c *Client) markDown(r *replica) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.fails++
	d := c.cfg.RetryBase << (r.fails - 1)
	if d > c.cfg.RetryMax || d <= 0 {
		d = c.cfg.RetryMax
	}
	r.downUntil = time.Now().Add(d)
}

// markUp clears backoff and advances the replica's observed epoch from
// any epoch-stamped response.
func (c *Client) markUp(r *replica, resp wire.Message) {
	var epoch uint64
	switch m := resp.(type) {
	case *wire.EpochResp:
		epoch = m.Epoch
	case *wire.RouteSetResp:
		epoch = m.Epoch
	case *wire.NotModified:
		epoch = m.Epoch
	case *wire.OrderResp:
		epoch = m.Epoch
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r.fails = 0
	r.probed = true
	r.downUntil = time.Time{}
	if epoch > r.lastEpoch {
		r.lastEpoch = epoch
	}
}
