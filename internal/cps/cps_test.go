package cps

import (
	"testing"
	"testing/quick"
)

var jobSizes = []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 18, 31, 32, 63, 100, 128, 324}

func allSequences(n int) []Sequence {
	return []Sequence{
		Shift(n),
		Ring(n),
		RingAllgather(n),
		Binomial(n),
		BinomialReduce(n),
		Dissemination(n),
		Tournament(n),
		RecursiveDoubling(n),
		RecursiveHalving(n),
	}
}

func TestValidateAll(t *testing.T) {
	for _, n := range jobSizes {
		for _, s := range allSequences(n) {
			if err := Validate(s); err != nil {
				t.Errorf("n=%d: %v", n, err)
			}
		}
	}
}

func TestConstantDisplacementPrinciple(t *testing.T) {
	// Section III observation 1: every stage of every CPS has constant
	// displacement; for bidirectional stages each direction separately.
	for _, n := range jobSizes {
		if n < 2 {
			continue
		}
		for _, s := range allSequences(n) {
			for st := 0; st < s.NumStages(); st++ {
				stage := s.Stage(st)
				if len(stage) == 0 {
					continue
				}
				if !s.Bidirectional() {
					if _, ok := Displacement(stage, n); !ok {
						t.Errorf("%s n=%d stage %d: mixed displacements", s.Name(), n, st)
					}
					continue
				}
				fwd, bwd := SplitDirections(stage, n)
				if _, ok := Displacement(fwd, n); !ok {
					t.Errorf("%s n=%d stage %d: forward half mixed", s.Name(), n, st)
				}
				if _, ok := Displacement(bwd, n); !ok {
					t.Errorf("%s n=%d stage %d: backward half mixed", s.Name(), n, st)
				}
			}
		}
	}
}

func TestShiftSupersetPrinciple(t *testing.T) {
	// Section III observation 3: every stage of every unidirectional
	// CPS is a sub-permutation of a Shift stage.
	for _, n := range jobSizes {
		if n < 2 {
			continue
		}
		for _, s := range allSequences(n) {
			if s.Bidirectional() {
				continue
			}
			for st := 0; st < s.NumStages(); st++ {
				if !IsSubPermutationOfShift(s.Stage(st), n) {
					t.Errorf("%s n=%d stage %d: not inside a Shift stage", s.Name(), n, st)
				}
			}
		}
	}
}

func TestBidirectionalSymmetry(t *testing.T) {
	// Table 2: for bidirectional CPS, the presence of (a,b) in a stage
	// implies (b,a) in the same stage.
	for _, n := range jobSizes {
		for _, s := range []Sequence{RecursiveDoubling(n), RecursiveHalving(n)} {
			for st := 0; st < s.NumStages(); st++ {
				stage := s.Stage(st)
				// Pre/post proxy stages are the documented exception:
				// they are unidirectional by construction.
				if hasProxyAt(s.(*RecursiveSeq), st) {
					continue
				}
				set := make(map[Pair]bool, len(stage))
				for _, p := range stage {
					set[p] = true
				}
				for _, p := range stage {
					if !set[Pair{p.Dst, p.Src}] {
						t.Errorf("%s n=%d stage %d: %v lacks reverse", s.Name(), n, st, p)
					}
				}
			}
		}
	}
}

func hasProxyAt(s *RecursiveSeq, st int) bool {
	return s.hasProxy() && (st == 0 || st == s.NumStages()-1)
}

func TestShiftStages(t *testing.T) {
	s := Shift(16)
	if s.NumStages() != 15 {
		t.Fatalf("shift(16) stages = %d, want 15", s.NumStages())
	}
	// The Figure 1 pattern: stage with displacement 4 is Stage(3).
	st := s.Stage(3)
	if len(st) != 16 {
		t.Fatalf("stage size = %d, want 16", len(st))
	}
	for _, p := range st {
		if int(p.Dst) != (int(p.Src)+4)%16 {
			t.Errorf("displacement-4 stage has %v", p)
		}
	}
}

func TestRingIsShiftByOne(t *testing.T) {
	r := Ring(7)
	if r.NumStages() != 1 {
		t.Fatalf("ring stages = %d, want 1", r.NumStages())
	}
	st := r.Stage(0)
	d, ok := Displacement(st, 7)
	if !ok || d != 1 {
		t.Fatalf("ring displacement = (%d,%v), want (1,true)", d, ok)
	}
	ra := RingAllgather(7)
	if ra.NumStages() != 6 {
		t.Fatalf("ring allgather stages = %d, want 6", ra.NumStages())
	}
}

func TestBinomialExample(t *testing.T) {
	// The paper's worked example: stage 0 only 0->1; stage 1 is 0->2,
	// 1->3; stage 2 is 0->4, 1->5, 2->6, 3->7.
	s := Binomial(1024)
	if s.NumStages() != 10 {
		t.Fatalf("binomial(1024) stages = %d, want 10", s.NumStages())
	}
	want := []Stage{
		{{0, 1}},
		{{0, 2}, {1, 3}},
		{{0, 4}, {1, 5}, {2, 6}, {3, 7}},
	}
	for st, w := range want {
		got := s.Stage(st)
		if len(got) != len(w) {
			t.Fatalf("stage %d size = %d, want %d", st, len(got), len(w))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("stage %d pair %d = %v, want %v", st, i, got[i], w[i])
			}
		}
	}
}

func TestBinomialCoversBroadcast(t *testing.T) {
	for _, n := range jobSizes {
		if !CoversBroadcast(Binomial(n), 0) {
			t.Errorf("binomial(%d) does not reach every rank", n)
		}
	}
}

func TestBinomialReduceMirrors(t *testing.T) {
	n := 21
	f := Binomial(n)
	r := BinomialReduce(n)
	if f.NumStages() != r.NumStages() {
		t.Fatalf("stage count mismatch %d vs %d", f.NumStages(), r.NumStages())
	}
	last := r.NumStages() - 1
	for st := 0; st <= last; st++ {
		fs, rs := f.Stage(st), r.Stage(last-st)
		if len(fs) != len(rs) {
			t.Fatalf("stage %d sizes %d vs %d", st, len(fs), len(rs))
		}
		for i := range fs {
			if fs[i].Src != rs[i].Dst || fs[i].Dst != rs[i].Src {
				t.Errorf("stage %d pair %d: %v not mirror of %v", st, i, rs[i], fs[i])
			}
		}
	}
}

func TestDisseminationCoversAllReduce(t *testing.T) {
	// Dissemination informs everyone about everyone in ceil(log2 n)
	// stages.
	for _, n := range jobSizes {
		if !CoversAllReduce(Dissemination(n)) {
			t.Errorf("dissemination(%d) incomplete", n)
		}
	}
}

func TestTournamentGathersToRoot(t *testing.T) {
	// After the tournament, rank 0 must know every contribution:
	// simulate reversed broadcast by checking the union converges at 0.
	for _, n := range jobSizes {
		s := Tournament(n)
		know := make([]map[int]bool, n)
		for i := range know {
			know[i] = map[int]bool{i: true}
		}
		for st := 0; st < s.NumStages(); st++ {
			for _, p := range s.Stage(st) {
				for k := range know[p.Src] {
					know[p.Dst][k] = true
				}
			}
		}
		if len(know[0]) != n {
			t.Errorf("tournament(%d): root knows %d of %d", n, len(know[0]), n)
		}
	}
}

func TestRecursiveDoublingCoversAllReduce(t *testing.T) {
	for _, n := range jobSizes {
		if !CoversAllReduce(RecursiveDoubling(n)) {
			t.Errorf("recursive-doubling(%d) incomplete", n)
		}
	}
}

func TestRecursiveDoublingStageCounts(t *testing.T) {
	cases := []struct{ n, want int }{
		{8, 3}, {16, 4}, {1024, 10},
		{5, 2 + 2}, {18, 4 + 2}, {1944, 10 + 2},
	}
	for _, tc := range cases {
		if got := RecursiveDoubling(tc.n).NumStages(); got != tc.want {
			t.Errorf("recursive-doubling(%d) stages = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestRecursiveHalvingReversesStages(t *testing.T) {
	n := 16
	d := RecursiveDoubling(n)
	h := RecursiveHalving(n)
	last := h.NumStages() - 1
	for st := 0; st <= last; st++ {
		ds, hs := d.Stage(st), h.Stage(last-st)
		if len(ds) != len(hs) {
			t.Fatalf("stage %d sizes %d vs %d", st, len(ds), len(hs))
		}
		for i := range ds {
			if ds[i] != hs[i] {
				t.Errorf("stage %d pair %d: %v vs %v", st, i, ds[i], hs[i])
			}
		}
	}
}

func TestRecursiveProxiesNonPow2(t *testing.T) {
	s := RecursiveDoubling(6) // pow = 4, remainder ranks 4,5
	pre := s.Stage(0)
	if len(pre) != 2 || pre[0] != (Pair{4, 0}) || pre[1] != (Pair{5, 1}) {
		t.Errorf("pre stage = %v, want [(4->0) (5->1)]", pre)
	}
	post := s.Stage(s.NumStages() - 1)
	if len(post) != 2 || post[0] != (Pair{0, 4}) || post[1] != (Pair{1, 5}) {
		t.Errorf("post stage = %v, want [(0->4) (1->5)]", post)
	}
}

func TestDisplacementHelper(t *testing.T) {
	if d, ok := Displacement(Stage{{0, 3}, {1, 4}, {5, 0}}, 8); !ok || d != 3 {
		t.Errorf("Displacement = (%d,%v), want (3,true)", d, ok)
	}
	if _, ok := Displacement(Stage{{0, 3}, {1, 5}}, 8); ok {
		t.Error("mixed stage reported constant")
	}
	if d, ok := Displacement(nil, 8); !ok || d != 0 {
		t.Errorf("empty stage = (%d,%v), want (0,true)", d, ok)
	}
}

func TestValidateCatchesBadStages(t *testing.T) {
	bad := []struct {
		name string
		st   Stage
	}{
		{"out of range", Stage{{0, 9}}},
		{"negative", Stage{{-1, 0}}},
		{"self", Stage{{2, 2}}},
		{"double send", Stage{{0, 1}, {0, 2}}},
		{"double recv", Stage{{0, 2}, {1, 2}}},
	}
	for _, tc := range bad {
		s := &fixedSeq{n: 8, stages: []Stage{tc.st}}
		if err := Validate(s); err == nil {
			t.Errorf("%s: Validate accepted %v", tc.name, tc.st)
		}
	}
}

// fixedSeq is a test helper with explicit stages.
type fixedSeq struct {
	n      int
	stages []Stage
}

func (f *fixedSeq) Name() string        { return "fixed" }
func (f *fixedSeq) Size() int           { return f.n }
func (f *fixedSeq) NumStages() int      { return len(f.stages) }
func (f *fixedSeq) Stage(s int) Stage   { return f.stages[s] }
func (f *fixedSeq) Bidirectional() bool { return false }

func TestShiftStagePermutationQuick(t *testing.T) {
	// Property: every Shift stage is a permutation (each rank sends
	// once, receives once).
	f := func(nRaw, sRaw uint8) bool {
		n := 2 + int(nRaw)%60
		s := int(sRaw) % (n - 1)
		st := Shift(n).Stage(s)
		srcs := make(map[int32]bool)
		dsts := make(map[int32]bool)
		for _, p := range st {
			if srcs[p.Src] || dsts[p.Dst] {
				return false
			}
			srcs[p.Src] = true
			dsts[p.Dst] = true
		}
		return len(srcs) == n && len(dsts) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLog2Helpers(t *testing.T) {
	cases := []struct{ n, fl, cl int }{
		{1, 0, 0}, {2, 1, 1}, {3, 1, 2}, {4, 2, 2}, {5, 2, 3},
		{1024, 10, 10}, {1944, 10, 11},
	}
	for _, tc := range cases {
		if got := log2Floor(tc.n); got != tc.fl {
			t.Errorf("log2Floor(%d) = %d, want %d", tc.n, got, tc.fl)
		}
		if got := log2Ceil(tc.n); got != tc.cl {
			t.Errorf("log2Ceil(%d) = %d, want %d", tc.n, got, tc.cl)
		}
	}
}

func TestSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Shift(0) did not panic")
		}
	}()
	Shift(0)
}
