package cps

import "testing"

func TestConcat(t *testing.T) {
	c, err := Concat("combo", Binomial(16), Dissemination(16))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStages() != 8 {
		t.Fatalf("stages = %d, want 4+4", c.NumStages())
	}
	if c.Size() != 16 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.Bidirectional() {
		t.Error("unidirectional parts marked bidirectional")
	}
	// First half is the binomial, second the dissemination.
	if len(c.Stage(0)) != 1 {
		t.Errorf("stage 0 = %v, want binomial's single pair", c.Stage(0))
	}
	if len(c.Stage(4)) != 16 {
		t.Errorf("stage 4 size = %d, want dissemination's 16", len(c.Stage(4)))
	}
	if err := Validate(c); err != nil {
		t.Error(err)
	}
}

func TestConcatErrors(t *testing.T) {
	if _, err := Concat("x"); err == nil {
		t.Error("empty concat accepted")
	}
	if _, err := Concat("x", Ring(8), Ring(9)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestConcatStagePanicsOutOfRange(t *testing.T) {
	c, err := Concat("x", Ring(8))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range stage did not panic")
		}
	}()
	c.Stage(5)
}

func TestReversedMirrors(t *testing.T) {
	b := Binomial(16)
	r := Reversed(b)
	if r.NumStages() != b.NumStages() || r.Size() != 16 {
		t.Fatal("metadata wrong")
	}
	last := b.NumStages() - 1
	for s := 0; s <= last; s++ {
		fwd := b.Stage(s)
		rev := r.Stage(last - s)
		if len(fwd) != len(rev) {
			t.Fatalf("stage %d sizes differ", s)
		}
		for i := range fwd {
			if rev[i].Src != fwd[i].Dst || rev[i].Dst != fwd[i].Src {
				t.Fatalf("stage %d pair %d: %v not mirror of %v", s, i, rev[i], fwd[i])
			}
		}
	}
	// Reversed binomial gathers to the root.
	know := make([]map[int]bool, 16)
	for i := range know {
		know[i] = map[int]bool{i: true}
	}
	for s := 0; s < r.NumStages(); s++ {
		for _, p := range r.Stage(s) {
			for k := range know[p.Src] {
				know[p.Dst][k] = true
			}
		}
	}
	if len(know[0]) != 16 {
		t.Errorf("reversed binomial: root knows %d of 16", len(know[0]))
	}
}

func TestReduceScatterAllgather(t *testing.T) {
	for _, n := range []int{8, 16, 18, 324} {
		seq, err := ReduceScatterAllgather(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(seq); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if !CoversAllReduce(seq) {
			t.Errorf("n=%d: reduce-scatter + allgather does not complete an allreduce", n)
		}
	}
}
