package cps

import "fmt"

// Composition helpers: real MPI algorithms chain permutation sequences
// (e.g. large-message allreduce = recursive-halving reduce-scatter
// followed by an allgather), and analyses often need a sequence played
// backwards.

// ConcatSeq plays several sequences back to back.
type ConcatSeq struct {
	name  string
	parts []Sequence
	total int
}

// Concat chains sequences over the same rank count.
func Concat(name string, parts ...Sequence) (*ConcatSeq, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("cps: concat of nothing")
	}
	n := parts[0].Size()
	total := 0
	for _, p := range parts {
		if p.Size() != n {
			return nil, fmt.Errorf("cps: concat size mismatch: %d vs %d", p.Size(), n)
		}
		total += p.NumStages()
	}
	return &ConcatSeq{name: name, parts: parts, total: total}, nil
}

// Name implements Sequence.
func (c *ConcatSeq) Name() string { return c.name }

// Size implements Sequence.
func (c *ConcatSeq) Size() int { return c.parts[0].Size() }

// NumStages implements Sequence.
func (c *ConcatSeq) NumStages() int { return c.total }

// Bidirectional reports whether every part is bidirectional.
func (c *ConcatSeq) Bidirectional() bool {
	for _, p := range c.parts {
		if !p.Bidirectional() {
			return false
		}
	}
	return true
}

// Stage implements Sequence.
func (c *ConcatSeq) Stage(s int) Stage {
	for _, p := range c.parts {
		if s < p.NumStages() {
			return p.Stage(s)
		}
		s -= p.NumStages()
	}
	panic(fmt.Sprintf("cps: concat stage %d out of range", s))
}

// ReversedSeq plays a sequence's stages in reverse order with every flow
// direction flipped — the schedule of the "mirror" collective (reduce
// from broadcast, gather from scatter).
type ReversedSeq struct {
	inner Sequence
}

// Reversed mirrors a sequence.
func Reversed(s Sequence) *ReversedSeq { return &ReversedSeq{inner: s} }

// Name implements Sequence.
func (r *ReversedSeq) Name() string { return r.inner.Name() + "-reversed" }

// Size implements Sequence.
func (r *ReversedSeq) Size() int { return r.inner.Size() }

// NumStages implements Sequence.
func (r *ReversedSeq) NumStages() int { return r.inner.NumStages() }

// Bidirectional implements Sequence.
func (r *ReversedSeq) Bidirectional() bool { return r.inner.Bidirectional() }

// Stage implements Sequence.
func (r *ReversedSeq) Stage(s int) Stage {
	st := r.inner.Stage(r.inner.NumStages() - 1 - s)
	out := make(Stage, len(st))
	for i, p := range st {
		out[i] = Pair{Src: p.Dst, Dst: p.Src}
	}
	return out
}

// ReduceScatterAllgather builds the classic large-message allreduce
// schedule: recursive halving (reduce-scatter) followed by its mirror
// (allgather) — 2*ceil(log2 n) stages plus proxies on non-pow2 sizes.
func ReduceScatterAllgather(n int) (Sequence, error) {
	rs := RecursiveHalving(n)
	ag := Reversed(RecursiveHalving(n))
	return Concat("reduce-scatter-allgather", rs, ag)
}
