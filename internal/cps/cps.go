// Package cps implements the Collective Permutation Sequences of Section
// III of the paper: the communication-pattern half of the decomposition of
// MPI collective algorithms into a permutation sequence plus message
// content.
//
// A sequence is an ordered list of stages; each stage is a set of
// (source rank, destination rank) flows that are active simultaneously.
// Bidirectional sequences include both directions of every exchange as
// explicit flows. The paper's Table 2 defines eight sequences; all of them
// obey the constant-displacement principle — within a stage the modular
// distance between source and destination is the same for every pair —
// and every unidirectional stage is a sub-permutation of some stage of the
// Shift sequence, which makes Shift the canonical worst case.
package cps

import "fmt"

// Pair is one flow: rank Src sends to rank Dst during a stage.
type Pair struct {
	Src, Dst int32
}

// Stage is the set of flows active in one step of a collective.
type Stage []Pair

// Sequence is a collective permutation sequence over ranks 0..Size()-1.
type Sequence interface {
	// Name identifies the CPS (matches the paper's Table 2 rows).
	Name() string
	// Size is the job size N.
	Size() int
	// NumStages is the number of communication stages.
	NumStages() int
	// Stage materializes stage s (0-based). Implementations compute it
	// on demand; callers own the returned slice.
	Stage(s int) Stage
	// Bidirectional reports whether every exchange implies the reverse
	// exchange in the same stage (Table 2's two CPS types).
	Bidirectional() bool
}

// Displacement returns the common (dst-src) mod n displacement of the
// stage and true, or 0 and false if the stage mixes displacements.
// Bidirectional stages mix d and n-d by construction; for those, callers
// should test each direction separately via SplitDirections.
func Displacement(st Stage, n int) (int, bool) {
	if len(st) == 0 {
		return 0, true
	}
	want := int((st[0].Dst - st[0].Src + int32(n))) % n
	for _, p := range st[1:] {
		d := int((p.Dst-p.Src)+int32(n)) % n
		if d != want {
			return 0, false
		}
	}
	return want, true
}

// SplitDirections partitions a stage into the flows with displacement in
// (0, n/2] ("forward") and the rest ("backward"). For a bidirectional
// stage built from XOR exchanges the two halves are mirror images.
func SplitDirections(st Stage, n int) (fwd, bwd Stage) {
	for _, p := range st {
		d := int((p.Dst-p.Src)+int32(n)) % n
		if d != 0 && d*2 <= n {
			fwd = append(fwd, p)
		} else {
			bwd = append(bwd, p)
		}
	}
	return fwd, bwd
}

// Validate checks structural sanity of an entire sequence: ranks in
// range, no self-flows, no duplicate flows within a stage, and no rank
// sending or receiving twice in one stage (permutation property).
func Validate(s Sequence) error {
	n := s.Size()
	for st := 0; st < s.NumStages(); st++ {
		stage := s.Stage(st)
		srcSeen := make(map[int32]bool, len(stage))
		dstSeen := make(map[int32]bool, len(stage))
		for _, p := range stage {
			if p.Src < 0 || int(p.Src) >= n || p.Dst < 0 || int(p.Dst) >= n {
				return fmt.Errorf("cps: %s stage %d: flow %d->%d out of range [0,%d)", s.Name(), st, p.Src, p.Dst, n)
			}
			if p.Src == p.Dst {
				return fmt.Errorf("cps: %s stage %d: self flow at rank %d", s.Name(), st, p.Src)
			}
			if srcSeen[p.Src] {
				return fmt.Errorf("cps: %s stage %d: rank %d sends twice", s.Name(), st, p.Src)
			}
			if dstSeen[p.Dst] {
				return fmt.Errorf("cps: %s stage %d: rank %d receives twice", s.Name(), st, p.Dst)
			}
			srcSeen[p.Src] = true
			dstSeen[p.Dst] = true
		}
	}
	return nil
}

// IsSubPermutationOfShift reports whether every flow of the stage appears
// in the Shift stage with the same displacement (Section III's key
// observation: Shift is a superset of all unidirectional CPS).
func IsSubPermutationOfShift(st Stage, n int) bool {
	if len(st) == 0 {
		return true
	}
	d, ok := Displacement(st, n)
	if !ok {
		return false
	}
	for _, p := range st {
		if int(p.Dst) != (int(p.Src)+d)%n {
			return false
		}
	}
	return true
}

// CoversAllReduce simulates information flow through the sequence: every
// rank starts knowing only its own contribution; a flow src->dst merges
// src's knowledge into dst *as of the start of the stage* (exchanges
// within a stage are simultaneous). It reports whether, after all stages,
// every rank knows every contribution — the correctness requirement for
// an allreduce-style collective built on the sequence.
func CoversAllReduce(s Sequence) bool {
	n := s.Size()
	words := (n + 63) / 64
	know := make([][]uint64, n)
	for i := range know {
		know[i] = make([]uint64, words)
		know[i][i/64] |= 1 << (i % 64)
	}
	incoming := make([][]uint64, n)
	for st := 0; st < s.NumStages(); st++ {
		stage := s.Stage(st)
		for _, p := range stage {
			if incoming[p.Dst] == nil {
				incoming[p.Dst] = make([]uint64, words)
			}
			for w, v := range know[p.Src] {
				incoming[p.Dst][w] |= v
			}
		}
		for _, p := range stage {
			if in := incoming[p.Dst]; in != nil {
				for w, v := range in {
					know[p.Dst][w] |= v
				}
				incoming[p.Dst] = nil
			}
		}
	}
	for w := 0; w < words; w++ {
		full := ^uint64(0)
		if rem := n - w*64; rem < 64 {
			full = (1 << rem) - 1
		}
		for r := 0; r < n; r++ {
			if know[r][w]&full != full {
				return false
			}
		}
	}
	return true
}

// CoversBroadcast reports whether rank root's contribution reaches every
// rank by the end of the sequence (correctness for one-to-all patterns
// like Binomial broadcast).
func CoversBroadcast(s Sequence, root int) bool {
	n := s.Size()
	know := make([]bool, n)
	know[root] = true
	for st := 0; st < s.NumStages(); st++ {
		var informed []int32
		for _, p := range s.Stage(st) {
			if know[p.Src] && !know[p.Dst] {
				informed = append(informed, p.Dst)
			}
		}
		for _, d := range informed {
			know[d] = true
		}
	}
	for _, k := range know {
		if !k {
			return false
		}
	}
	return true
}

// log2Ceil returns ceil(log2(n)) for n >= 1.
func log2Ceil(n int) int {
	s := 0
	for 1<<s < n {
		s++
	}
	return s
}

// log2Floor returns floor(log2(n)) for n >= 1.
func log2Floor(n int) int {
	s := 0
	for 1<<(s+1) <= n {
		s++
	}
	return s
}

func checkSize(name string, n int) {
	if n < 1 {
		panic(fmt.Sprintf("cps: %s wants a positive job size, got %d", name, n))
	}
}
