package cps

import (
	"fmt"
	"sort"
)

// TopoAwareSeq is the Section VI congestion-free Recursive-Doubling
// sequence. Instead of XOR-ing the flat rank, communication follows the
// tree: one group of stages per tree level, each group exchanging between
// sibling sub-trees of that level only. Within a stage all traffic that
// climbs the tree shares a single hierarchical displacement, so Theorem 3
// applies and D-Mod-K routes it without contention.
//
// Ranks are assumed to be assigned in topology order (rank r on the r-th
// active end-port), which is exactly the node ordering the paper mandates.
type TopoAwareSeq struct {
	m      []int   // children per level, m[0] = hosts per leaf
	active []int   // sorted active host indices
	stages []Stage // materialized at construction
	groups []GroupInfo
}

// GroupInfo records which stage indices belong to which tree level, for
// reporting and for the Table 3 experiments.
type GroupInfo struct {
	Level       int // 1-based tree level
	First, Last int // inclusive stage range; Last < First when empty
	Pre, Post   bool
	Fixups      int // correction stages for uneven partial population
}

// taUnit is one occupied level-(l-1) sub-tree taking part in a level-l
// exchange group; for l == 1 a unit is a single host.
type taUnit struct {
	members []int // host indices, ascending
}

// taSubtree is one level-l sub-tree with its occupied child units in
// child-index order.
type taSubtree struct {
	units []taUnit
}

func (st *taSubtree) fullMask() uint64 {
	return (uint64(1) << len(st.units)) - 1
}

// TopoAwareRecursiveDoubling builds the sequence for a fully populated
// tree with the given per-level children counts (m[0] hosts per leaf,
// m[1] leaves per level-2 sub-tree, ...). The job size is prod(m). On a
// full tree the construction is exactly the paper's: per level,
// optionally a pre stage (equation-3 style proxy fold), floor(log2(m_l))
// XOR stages, and optionally a post stage; no fixups.
func TopoAwareRecursiveDoubling(m []int) (*TopoAwareSeq, error) {
	n := 1
	for _, mi := range m {
		if mi < 1 {
			return nil, fmt.Errorf("cps: topo-aware: non-positive children count %d", mi)
		}
		n *= mi
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	return TopoAwareRecursiveDoublingPartial(m, active)
}

// TopoAwareRecursiveDoublingPartial builds the sequence for a partially
// populated tree: active lists the populated end-port indices in the full
// tree's 0..prod(m)-1 index space. Rank r maps to the r-th active host in
// ascending index order.
//
// When sibling sub-trees hold unequal numbers of active hosts the
// member-wise pairing leaves some hosts without partners; correction
// ("fixup") stages — traffic purely inside the affected sub-tree —
// redistribute the merged data to them. On evenly populated trees
// (including whole-leaf removals) no fixup stages are generated.
func TopoAwareRecursiveDoublingPartial(m []int, active []int) (*TopoAwareSeq, error) {
	if len(m) == 0 {
		return nil, fmt.Errorf("cps: topo-aware: empty tree shape")
	}
	n := 1
	for _, mi := range m {
		if mi < 1 {
			return nil, fmt.Errorf("cps: topo-aware: non-positive children count %d", mi)
		}
		if mi > 64 {
			return nil, fmt.Errorf("cps: topo-aware: children count %d exceeds supported 64", mi)
		}
		n *= mi
	}
	act := append([]int(nil), active...)
	sort.Ints(act)
	for i, h := range act {
		if h < 0 || h >= n {
			return nil, fmt.Errorf("cps: topo-aware: active host %d out of range [0,%d)", h, n)
		}
		if i > 0 && act[i-1] == h {
			return nil, fmt.Errorf("cps: topo-aware: duplicate active host %d", h)
		}
	}
	if len(act) == 0 {
		return nil, fmt.Errorf("cps: topo-aware: no active hosts")
	}
	s := &TopoAwareSeq{m: append([]int(nil), m...), active: act}
	if err := s.build(); err != nil {
		return nil, err
	}
	return s, nil
}

// Name implements Sequence.
func (s *TopoAwareSeq) Name() string { return "topo-aware-recursive-doubling" }

// Size implements Sequence.
func (s *TopoAwareSeq) Size() int { return len(s.active) }

// NumStages implements Sequence.
func (s *TopoAwareSeq) NumStages() int { return len(s.stages) }

// Bidirectional implements Sequence.
func (s *TopoAwareSeq) Bidirectional() bool { return true }

// Stage implements Sequence.
func (s *TopoAwareSeq) Stage(st int) Stage {
	out := make(Stage, len(s.stages[st]))
	copy(out, s.stages[st])
	return out
}

// Groups returns the per-level stage bookkeeping.
func (s *TopoAwareSeq) Groups() []GroupInfo {
	return append([]GroupInfo(nil), s.groups...)
}

// ActiveHosts returns the sorted active end-port indices (rank order).
func (s *TopoAwareSeq) ActiveHosts() []int {
	return append([]int(nil), s.active...)
}

// builder carries the per-level construction state.
type taBuilder struct {
	seq    *TopoAwareSeq
	rankOf map[int]int
	know   map[int]uint64 // host -> mask of own-subtree units known
	unitOf map[int]int    // host -> unit index within its subtree
	subs   []taSubtree
}

// build constructs the stage list level by level, simulating knowledge
// propagation to place fixup stages and to guarantee allreduce coverage.
func (s *TopoAwareSeq) build() error {
	b := &taBuilder{seq: s, rankOf: make(map[int]int, len(s.active))}
	for r, h := range s.active {
		b.rankOf[h] = r
	}
	h := len(s.m)
	mprod := make([]int, h+1)
	mprod[0] = 1
	for l := 1; l <= h; l++ {
		mprod[l] = mprod[l-1] * s.m[l-1]
	}
	for l := 1; l <= h; l++ {
		if err := b.buildLevel(l, mprod); err != nil {
			return err
		}
	}
	for i, st := range s.stages {
		if len(st) == 0 {
			return fmt.Errorf("cps: topo-aware: empty stage %d", i)
		}
	}
	return nil
}

func (b *taBuilder) buildLevel(l int, mprod []int) error {
	s := b.seq
	gi := GroupInfo{Level: l, First: len(s.stages)}

	// Partition active hosts into level-l sub-trees and occupied
	// level-(l-1) units.
	subMap := make(map[int]map[int][]int)
	for _, host := range s.active {
		sid := host / mprod[l]
		uid := host / mprod[l-1]
		if subMap[sid] == nil {
			subMap[sid] = make(map[int][]int)
		}
		subMap[sid][uid] = append(subMap[sid][uid], host)
	}
	sids := make([]int, 0, len(subMap))
	for sid := range subMap {
		sids = append(sids, sid)
	}
	sort.Ints(sids)
	b.subs = b.subs[:0]
	for _, sid := range sids {
		uids := make([]int, 0, len(subMap[sid]))
		for uid := range subMap[sid] {
			uids = append(uids, uid)
		}
		sort.Ints(uids)
		var st taSubtree
		for _, uid := range uids {
			st.units = append(st.units, taUnit{members: subMap[sid][uid]})
		}
		b.subs = append(b.subs, st)
	}

	// Knowledge: every host starts the level knowing its own unit
	// (level l-1 completeness holds inductively).
	b.know = make(map[int]uint64, len(s.active))
	b.unitOf = make(map[int]int, len(s.active))
	for _, st := range b.subs {
		for u, un := range st.units {
			for _, host := range un.members {
				b.know[host] = 1 << u
				b.unitOf[host] = u
			}
		}
	}

	maxL := 0
	anyPre := false
	for _, st := range b.subs {
		lg := log2Floor(len(st.units))
		if lg > maxL {
			maxL = lg
		}
		if len(st.units) != 1<<lg {
			anyPre = true
		}
	}

	// Pre stage: remainder units fold onto proxies.
	if anyPre {
		var stage Stage
		for _, st := range b.subs {
			e := 1 << log2Floor(len(st.units))
			for u := e; u < len(st.units); u++ {
				b.addPairs(&stage, st.units[u], st.units[u-e])
			}
		}
		if b.commit(stage) {
			gi.Pre = true
		}
	}
	// XOR stages over proxy units.
	for sx := 0; sx < maxL; sx++ {
		var stage Stage
		for _, st := range b.subs {
			e := 1 << log2Floor(len(st.units))
			if 1<<sx >= e {
				continue
			}
			for u := 0; u < e; u++ {
				if v := u ^ (1 << sx); v < e {
					b.addPairs(&stage, st.units[u], st.units[v])
				}
			}
		}
		b.commit(stage)
	}
	// Fixups pass 1: complete proxy-unit members before post unfolds.
	gi.Fixups += b.emitFixups(true)
	// Post stage: proxies unfold onto remainder units.
	if anyPre {
		var stage Stage
		for _, st := range b.subs {
			e := 1 << log2Floor(len(st.units))
			for u := e; u < len(st.units); u++ {
				b.addPairs(&stage, st.units[u-e], st.units[u])
			}
		}
		if b.commit(stage) {
			gi.Post = true
		}
	}
	// Fixups pass 2: stragglers in remainder units.
	gi.Fixups += b.emitFixups(false)

	// Assert level-l completeness for every active host.
	for _, st := range b.subs {
		full := st.fullMask()
		for _, un := range st.units {
			for _, host := range un.members {
				if b.know[host] != full {
					return fmt.Errorf("cps: topo-aware: host %d incomplete after level %d (%b of %b)",
						host, l, b.know[host], full)
				}
			}
		}
	}
	gi.Last = len(s.stages) - 1
	s.groups = append(s.groups, gi)
	return nil
}

// addPairs emits directed member-wise pairs from unit `from` to unit `to`.
func (b *taBuilder) addPairs(stage *Stage, from, to taUnit) {
	k := len(from.members)
	if len(to.members) < k {
		k = len(to.members)
	}
	for i := 0; i < k; i++ {
		*stage = append(*stage, Pair{int32(b.rankOf[from.members[i]]), int32(b.rankOf[to.members[i]])})
	}
}

// commit applies the stage's knowledge transfer (simultaneous semantics)
// and appends it if non-empty. Reports whether the stage was kept.
func (b *taBuilder) commit(stage Stage) bool {
	if len(stage) == 0 {
		return false
	}
	gain := make(map[int32]uint64, len(stage))
	for _, p := range stage {
		gain[p.Dst] |= b.know[b.seq.active[p.Src]]
	}
	for dst, g := range gain {
		b.know[b.seq.active[dst]] |= g
	}
	b.seq.stages = append(b.seq.stages, stage)
	return true
}

// emitFixups appends correction stages until every reachable host is
// complete. With proxiesOnly, repair is restricted to hosts in units
// below the proxy threshold (pass 1, before the post stage); pass 2
// covers the remainder units. Donors from the needy host's own unit are
// preferred so fixup traffic stays as low in the tree as possible.
// Returns the number of stages emitted.
func (b *taBuilder) emitFixups(proxiesOnly bool) int {
	emitted := 0
	for {
		var stage Stage
		for _, st := range b.subs {
			f := st.fullMask()
			e := 1 << log2Floor(len(st.units))
			var ready, needy []int
			for u, un := range st.units {
				if proxiesOnly && u >= e {
					continue
				}
				for _, host := range un.members {
					if b.know[host] == f {
						ready = append(ready, host)
					} else {
						needy = append(needy, host)
					}
				}
			}
			used := make(map[int]bool, len(ready))
			for _, nh := range needy {
				donor := -1
				for _, rh := range ready {
					if !used[rh] && b.unitOf[rh] == b.unitOf[nh] {
						donor = rh
						break
					}
				}
				if donor == -1 {
					for _, rh := range ready {
						if !used[rh] {
							donor = rh
							break
						}
					}
				}
				if donor == -1 {
					continue // try again next round
				}
				used[donor] = true
				stage = append(stage, Pair{int32(b.rankOf[donor]), int32(b.rankOf[nh])})
			}
		}
		if !b.commit(stage) {
			return emitted
		}
		emitted++
		if emitted > 64 {
			panic("cps: topo-aware: fixup did not converge")
		}
	}
}
