package cps

// The two bidirectional sequences of Table 2. Every exchange implies the
// reverse exchange within the same stage. Non-power-of-2 job sizes are
// handled the way MPI implementations do (Section VI, equations 3 and 4):
// a "pre" permutation folds the remainder ranks above the largest power of
// two onto proxies below it, and a "post" permutation unfolds the result.

// RecursiveSeq implements Recursive-Doubling and Recursive-Halving; the
// two differ only in the order the XOR stages are played.
type RecursiveSeq struct {
	n       int
	halving bool
	pow     int // largest power of two <= n
}

// RecursiveDoubling returns the Recursive-Doubling CPS (allreduce,
// allgather for small messages, "Butterfly" in the paper's Figure 3).
func RecursiveDoubling(n int) *RecursiveSeq {
	checkSize("recursive-doubling", n)
	return &RecursiveSeq{n: n, pow: 1 << log2Floor(n)}
}

// RecursiveHalving returns the Recursive-Halving CPS (reduce-scatter);
// the same permutations with the XOR stages in descending distance order.
func RecursiveHalving(n int) *RecursiveSeq {
	checkSize("recursive-halving", n)
	return &RecursiveSeq{n: n, halving: true, pow: 1 << log2Floor(n)}
}

// Name implements Sequence.
func (s *RecursiveSeq) Name() string {
	if s.halving {
		return "recursive-halving"
	}
	return "recursive-doubling"
}

// Size implements Sequence.
func (s *RecursiveSeq) Size() int { return s.n }

// hasProxy reports whether pre/post stages are needed.
func (s *RecursiveSeq) hasProxy() bool { return s.n != s.pow }

// NumStages implements Sequence.
func (s *RecursiveSeq) NumStages() int {
	st := log2Floor(s.n)
	if s.hasProxy() {
		st += 2
	}
	return st
}

// Bidirectional implements Sequence.
func (s *RecursiveSeq) Bidirectional() bool { return true }

// Stage implements Sequence. With proxies the layout is
// [pre, xor stages..., post]; the xor stages run with ascending distance
// for doubling and descending for halving.
func (s *RecursiveSeq) Stage(st int) Stage {
	nx := log2Floor(s.n)
	if s.hasProxy() {
		switch st {
		case 0:
			return s.proxyStage(true)
		case nx + 1:
			return s.proxyStage(false)
		default:
			st--
		}
	}
	if s.halving {
		st = nx - 1 - st
	}
	d := 1 << st
	var out Stage
	for i := 0; i < s.pow; i++ {
		j := i ^ d
		if j < s.pow {
			out = append(out, Pair{int32(i), int32(j)})
		}
	}
	return out
}

// proxyStage builds equation (3) (pre: remainder -> proxy) or
// equation (4) (post: proxy -> remainder).
func (s *RecursiveSeq) proxyStage(pre bool) Stage {
	var out Stage
	for i := 0; i+s.pow < s.n; i++ {
		if pre {
			out = append(out, Pair{int32(i + s.pow), int32(i)})
		} else {
			out = append(out, Pair{int32(i), int32(i + s.pow)})
		}
	}
	return out
}
