package cps_test

import (
	"fmt"

	"fattree/internal/cps"
)

// Walk the first stages of a Binomial broadcast (the paper's worked
// example from Section III).
func ExampleBinomial() {
	s := cps.Binomial(1024)
	for st := 0; st < 3; st++ {
		fmt.Printf("stage %d:", st)
		for _, p := range s.Stage(st) {
			fmt.Printf(" %d->%d", p.Src, p.Dst)
		}
		fmt.Println()
	}
	// Output:
	// stage 0: 0->1
	// stage 1: 0->2 1->3
	// stage 2: 0->4 1->5 2->6 3->7
}

// Every unidirectional stage sits inside a Shift stage — the property
// that makes the Shift the canonical worst case.
func ExampleIsSubPermutationOfShift() {
	n := 32
	d := cps.Dissemination(n)
	ok := true
	for s := 0; s < d.NumStages(); s++ {
		ok = ok && cps.IsSubPermutationOfShift(d.Stage(s), n)
	}
	fmt.Println("dissemination ⊂ shift:", ok)
	// Output:
	// dissemination ⊂ shift: true
}

// The Section VI sequence follows the tree instead of the flat rank.
func ExampleTopoAwareRecursiveDoubling() {
	s, err := cps.TopoAwareRecursiveDoubling([]int{18, 18})
	if err != nil {
		panic(err)
	}
	fmt.Println("stages:", s.NumStages())
	for _, g := range s.Groups() {
		fmt.Printf("level %d: stages %d..%d pre=%v post=%v\n",
			g.Level, g.First, g.Last, g.Pre, g.Post)
	}
	fmt.Println("completes an allreduce:", cps.CoversAllReduce(s))
	// Output:
	// stages: 12
	// level 1: stages 0..5 pre=true post=true
	// level 2: stages 6..11 pre=true post=true
	// completes an allreduce: true
}
