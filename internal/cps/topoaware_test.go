package cps

import (
	"math/rand"
	"testing"
)

func TestTopoAwareFullTreeStructure(t *testing.T) {
	// Full tree 4x4 (16 hosts): both levels are powers of two, so the
	// sequence is exactly 2+2 XOR stages, no pre/post/fixups.
	s, err := TopoAwareRecursiveDoubling([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 16 {
		t.Fatalf("size = %d, want 16", s.Size())
	}
	if s.NumStages() != 4 {
		t.Fatalf("stages = %d, want 4", s.NumStages())
	}
	for _, g := range s.Groups() {
		if g.Pre || g.Post || g.Fixups != 0 {
			t.Errorf("level %d has pre=%v post=%v fixups=%d on a pow2 full tree", g.Level, g.Pre, g.Post, g.Fixups)
		}
	}
	if err := Validate(s); err != nil {
		t.Error(err)
	}
	if !CoversAllReduce(s) {
		t.Error("full 4x4 topo-aware RD incomplete")
	}
}

func TestTopoAwareNonPow2Levels(t *testing.T) {
	// 18 hosts per leaf: L=4, pre+post per level.
	s, err := TopoAwareRecursiveDoubling([]int{18, 18})
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 324 {
		t.Fatalf("size = %d, want 324", s.Size())
	}
	for _, g := range s.Groups() {
		if !g.Pre || !g.Post {
			t.Errorf("level %d missing pre/post for m=18", g.Level)
		}
		if g.Fixups != 0 {
			t.Errorf("level %d has %d fixups on a full tree", g.Level, g.Fixups)
		}
	}
	// Per paper: at most 2 extra stages per level when K not pow2:
	// stages = 2*(4+2) = 12.
	if s.NumStages() != 12 {
		t.Fatalf("stages = %d, want 12", s.NumStages())
	}
	if err := Validate(s); err != nil {
		t.Error(err)
	}
	if !CoversAllReduce(s) {
		t.Error("full 18x18 topo-aware RD incomplete")
	}
}

func TestTopoAwareFirstGroupStaysInLeaf(t *testing.T) {
	// Level-1 stages must only pair hosts of the same leaf.
	s, err := TopoAwareRecursiveDoubling([]int{6, 4})
	if err != nil {
		t.Fatal(err)
	}
	g := s.Groups()[0]
	for st := g.First; st <= g.Last; st++ {
		for _, p := range s.Stage(st) {
			if int(p.Src)/6 != int(p.Dst)/6 {
				t.Errorf("level-1 stage %d pairs across leaves: %v", st, p)
			}
		}
	}
	// Level-2 stages must pair across leaves at identical offsets.
	g2 := s.Groups()[1]
	for st := g2.First; st <= g2.Last; st++ {
		for _, p := range s.Stage(st) {
			if int(p.Src)/6 == int(p.Dst)/6 {
				t.Errorf("level-2 stage %d pairs within a leaf: %v", st, p)
			}
			if int(p.Src)%6 != int(p.Dst)%6 {
				t.Errorf("level-2 stage %d not member-aligned: %v", st, p)
			}
		}
	}
}

func TestTopoAwareHierarchicalDisplacement(t *testing.T) {
	// Theorem 3 requirement: within a stage, all pairs have the same
	// absolute index displacement (in each direction) on a full tree.
	s, err := TopoAwareRecursiveDoubling([]int{6, 6, 4})
	if err != nil {
		t.Fatal(err)
	}
	n := s.Size()
	for st := 0; st < s.NumStages(); st++ {
		fwd, bwd := SplitDirections(s.Stage(st), n)
		if _, ok := Displacement(fwd, n); !ok {
			t.Errorf("stage %d forward half mixed", st)
		}
		if _, ok := Displacement(bwd, n); !ok {
			t.Errorf("stage %d backward half mixed", st)
		}
	}
}

func TestTopoAwarePartialWholeLeafRemoval(t *testing.T) {
	// Removing whole leaves keeps populations even: no fixup stages.
	var active []int
	for leaf := 0; leaf < 8; leaf++ {
		if leaf == 2 || leaf == 5 || leaf == 7 {
			continue
		}
		for i := 0; i < 4; i++ {
			active = append(active, leaf*4+i)
		}
	}
	s, err := TopoAwareRecursiveDoublingPartial([]int{4, 8}, active)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 20 {
		t.Fatalf("size = %d, want 20", s.Size())
	}
	for _, g := range s.Groups() {
		if g.Fixups != 0 {
			t.Errorf("level %d has %d fixups despite even populations", g.Level, g.Fixups)
		}
	}
	if err := Validate(s); err != nil {
		t.Error(err)
	}
	if !CoversAllReduce(s) {
		t.Error("whole-leaf-removal sequence incomplete")
	}
}

func TestTopoAwarePartialRandomRemoval(t *testing.T) {
	// Random node removal: fixups may appear, but the sequence must
	// remain a valid, complete allreduce schedule.
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 64
		drop := 1 + r.Intn(20)
		perm := r.Perm(n)
		active := perm[drop:]
		s, err := TopoAwareRecursiveDoublingPartial([]int{4, 4, 4}, active)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Validate(s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !CoversAllReduce(s) {
			t.Fatalf("trial %d: incomplete coverage (dropped %d)", trial, drop)
		}
	}
}

func TestTopoAwareSingleHost(t *testing.T) {
	s, err := TopoAwareRecursiveDoublingPartial([]int{4, 4}, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStages() != 0 {
		t.Errorf("single-host job has %d stages, want 0", s.NumStages())
	}
	if !CoversAllReduce(s) {
		t.Error("trivial job must trivially cover")
	}
}

func TestTopoAwareErrors(t *testing.T) {
	if _, err := TopoAwareRecursiveDoubling(nil); err == nil {
		t.Error("empty shape accepted")
	}
	if _, err := TopoAwareRecursiveDoubling([]int{0, 4}); err == nil {
		t.Error("zero children accepted")
	}
	if _, err := TopoAwareRecursiveDoubling([]int{128}); err == nil {
		t.Error("over-64 children accepted")
	}
	if _, err := TopoAwareRecursiveDoublingPartial([]int{4, 4}, []int{1, 1}); err == nil {
		t.Error("duplicate active accepted")
	}
	if _, err := TopoAwareRecursiveDoublingPartial([]int{4, 4}, []int{16}); err == nil {
		t.Error("out-of-range active accepted")
	}
	if _, err := TopoAwareRecursiveDoublingPartial([]int{4, 4}, nil); err == nil {
		t.Error("empty active accepted")
	}
}

func TestTopoAwareMatchesPlainRDInfoFlow(t *testing.T) {
	// Information-flow equivalence with plain recursive doubling: both
	// must complete an allreduce; the topo-aware one may use more
	// stages but never more than sum_l (log2ceil(m_l)+2).
	for _, shape := range [][]int{{4, 4}, {6, 6}, {18, 18}, {12, 12, 12}} {
		s, err := TopoAwareRecursiveDoubling(shape)
		if err != nil {
			t.Fatal(err)
		}
		bound := 0
		for _, m := range shape {
			bound += log2Ceil(m) + 2
		}
		if s.NumStages() > bound {
			t.Errorf("shape %v: %d stages exceeds bound %d", shape, s.NumStages(), bound)
		}
		if !CoversAllReduce(s) {
			t.Errorf("shape %v: incomplete", shape)
		}
	}
}

func TestTopoAwareQuickRandomShapes(t *testing.T) {
	// Property sweep: random small tree shapes and random partial
	// populations always produce valid, complete allreduce schedules.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		h := 1 + r.Intn(3)
		shape := make([]int, h)
		n := 1
		for i := range shape {
			shape[i] = 2 + r.Intn(6)
			n *= shape[i]
		}
		var active []int
		if r.Intn(2) == 0 {
			perm := r.Perm(n)
			keep := 1 + r.Intn(n)
			active = perm[:keep]
		}
		seq, err := TopoAwareRecursiveDoublingPartial(shape, activeOrAllHosts(n, active))
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if err := Validate(seq); err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		if !CoversAllReduce(seq) {
			t.Fatalf("shape %v active %d: incomplete", shape, seq.Size())
		}
	}
}

func activeOrAllHosts(n int, active []int) []int {
	if active != nil {
		return active
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}
