package cps

// The five unidirectional sequences of Table 2. Every stage of every one
// of them is a sub-permutation of a Shift stage, so the Shift sequence is
// the superset whose contention-freedom (Theorems 1 and 2) carries over.

// ShiftSeq is the Shift CPS: stages s = 1..N-1, each the full permutation
// n_i -> n_{(i+s) mod N}. It is the pattern behind large-message
// all-to-all and pairwise-exchange alltoallv algorithms.
type ShiftSeq struct{ n int }

// Shift returns the Shift CPS for job size n.
func Shift(n int) *ShiftSeq {
	checkSize("shift", n)
	return &ShiftSeq{n}
}

// Name implements Sequence.
func (s *ShiftSeq) Name() string { return "shift" }

// Size implements Sequence.
func (s *ShiftSeq) Size() int { return s.n }

// NumStages implements Sequence.
func (s *ShiftSeq) NumStages() int { return s.n - 1 }

// Bidirectional implements Sequence.
func (s *ShiftSeq) Bidirectional() bool { return false }

// Stage implements Sequence: displacement s+1.
func (s *ShiftSeq) Stage(st int) Stage {
	d := st + 1
	out := make(Stage, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = Pair{int32(i), int32((i + d) % s.n)}
	}
	return out
}

// RingSeq is the Ring CPS: a single stage n_i -> n_{(i+1) mod N},
// repeated by ring allgather/allreduce algorithms N-1 times with the same
// neighbours. We expose the repeats so per-stage analyses weight it like
// the running algorithm does.
type RingSeq struct {
	n       int
	repeats int
}

// Ring returns the Ring CPS for job size n (a single stage).
func Ring(n int) *RingSeq {
	checkSize("ring", n)
	return &RingSeq{n, 1}
}

// RingAllgather returns the Ring CPS repeated n-1 times, the full
// allgather schedule.
func RingAllgather(n int) *RingSeq {
	checkSize("ring", n)
	return &RingSeq{n, n - 1}
}

// Name implements Sequence.
func (s *RingSeq) Name() string { return "ring" }

// Size implements Sequence.
func (s *RingSeq) Size() int { return s.n }

// NumStages implements Sequence.
func (s *RingSeq) NumStages() int { return s.repeats }

// Bidirectional implements Sequence.
func (s *RingSeq) Bidirectional() bool { return false }

// Stage implements Sequence: every stage is the displacement-1 shift.
func (s *RingSeq) Stage(int) Stage {
	out := make(Stage, 0, s.n)
	for i := 0; i < s.n; i++ {
		if s.n == 1 {
			break
		}
		out = append(out, Pair{int32(i), int32((i + 1) % s.n)})
	}
	return out
}

// BinomialSeq is the Binomial CPS: stage s has n_i -> n_{i+2^s} for
// 0 <= i < 2^s with i+2^s < N. Broadcast runs it forward; reduce runs the
// mirrored direction (set reduce=true).
type BinomialSeq struct {
	n      int
	reduce bool
}

// Binomial returns the broadcast-direction Binomial CPS.
func Binomial(n int) *BinomialSeq {
	checkSize("binomial", n)
	return &BinomialSeq{n, false}
}

// BinomialReduce returns the reduce-direction Binomial CPS (arrows
// reversed, stages in reverse order).
func BinomialReduce(n int) *BinomialSeq {
	checkSize("binomial", n)
	return &BinomialSeq{n, true}
}

// Name implements Sequence.
func (s *BinomialSeq) Name() string {
	if s.reduce {
		return "binomial-reduce"
	}
	return "binomial"
}

// Size implements Sequence.
func (s *BinomialSeq) Size() int { return s.n }

// NumStages implements Sequence.
func (s *BinomialSeq) NumStages() int { return log2Ceil(s.n) }

// Bidirectional implements Sequence.
func (s *BinomialSeq) Bidirectional() bool { return false }

// Stage implements Sequence.
func (s *BinomialSeq) Stage(st int) Stage {
	if s.reduce {
		st = s.NumStages() - 1 - st
	}
	d := 1 << st
	var out Stage
	for i := 0; i < d && i+d < s.n; i++ {
		if s.reduce {
			out = append(out, Pair{int32(i + d), int32(i)})
		} else {
			out = append(out, Pair{int32(i), int32(i + d)})
		}
	}
	return out
}

// DisseminationSeq is the Dissemination CPS: stage s has
// n_i -> n_{(i+2^s) mod N} for all i — the pattern of the dissemination
// barrier and Bruck allgather.
type DisseminationSeq struct{ n int }

// Dissemination returns the Dissemination CPS for job size n.
func Dissemination(n int) *DisseminationSeq {
	checkSize("dissemination", n)
	return &DisseminationSeq{n}
}

// Name implements Sequence.
func (s *DisseminationSeq) Name() string { return "dissemination" }

// Size implements Sequence.
func (s *DisseminationSeq) Size() int { return s.n }

// NumStages implements Sequence.
func (s *DisseminationSeq) NumStages() int { return log2Ceil(s.n) }

// Bidirectional implements Sequence.
func (s *DisseminationSeq) Bidirectional() bool { return false }

// Stage implements Sequence.
func (s *DisseminationSeq) Stage(st int) Stage {
	d := (1 << st) % s.n
	out := make(Stage, 0, s.n)
	for i := 0; i < s.n; i++ {
		if d == 0 {
			break
		}
		out = append(out, Pair{int32(i), int32((i + d) % s.n)})
	}
	return out
}

// TournamentSeq is the Tournament CPS: stage s has n_{i+2^s} -> n_i for
// every i that is a multiple of 2^{s+1} (losers report to winners).
type TournamentSeq struct{ n int }

// Tournament returns the Tournament CPS for job size n.
func Tournament(n int) *TournamentSeq {
	checkSize("tournament", n)
	return &TournamentSeq{n}
}

// Name implements Sequence.
func (s *TournamentSeq) Name() string { return "tournament" }

// Size implements Sequence.
func (s *TournamentSeq) Size() int { return s.n }

// NumStages implements Sequence.
func (s *TournamentSeq) NumStages() int { return log2Ceil(s.n) }

// Bidirectional implements Sequence.
func (s *TournamentSeq) Bidirectional() bool { return false }

// Stage implements Sequence.
func (s *TournamentSeq) Stage(st int) Stage {
	d := 1 << st
	var out Stage
	for i := 0; i+d < s.n; i += 2 * d {
		out = append(out, Pair{int32(i + d), int32(i)})
	}
	return out
}
